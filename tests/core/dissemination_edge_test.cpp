// Additional Stage-4 edge cases: header bookkeeping, decoder accounting,
// group boundaries and scheduling invariants.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/dissemination.hpp"
#include "graph/generators.hpp"

namespace radiocast::core {
namespace {

ResolvedConfig rc_for(const graph::Graph& g) {
  KBroadcastConfig kcfg;
  kcfg.know = radio::Knowledge::exact(g);
  return resolve(kcfg);
}

std::vector<radio::Packet> packets(std::uint32_t k, Rng& rng) {
  std::vector<radio::Packet> out;
  for (std::uint32_t i = 0; i < k; ++i) {
    radio::Packet p;
    p.id = radio::make_packet_id(7, i);
    p.payload.resize(4);
    for (auto& b : p.payload) b = static_cast<std::uint8_t>(rng() & 0xff);
    out.push_back(std::move(p));
  }
  return out;
}

TEST(DissemEdge, LastGroupMayBeSmaller) {
  const graph::Graph g = graph::make_path(40);  // log n = 6
  const ResolvedConfig rc = rc_for(g);
  Rng rng(1), prng(2);
  DisseminationState root(DisseminationState::Config{rc}, 0, true, 0u, &rng);
  const std::uint32_t k = rc.group_size * 2 + 1;  // last group size 1
  root.set_root_packets(packets(k, prng));
  EXPECT_EQ(root.group_count(), 3u);
  // Scan the injection phase of group 2: exactly one packet is sent.
  const std::uint64_t phase = 2ull * rc.group_spacing;
  int sent = 0;
  for (std::uint64_t off = 0; off < rc.dissem_phase_rounds; ++off) {
    const auto out = root.on_transmit(phase * rc.dissem_phase_rounds + off);
    if (out.has_value()) {
      ++sent;
      const auto* plain = std::get_if<radio::PlainPacketMsg>(&*out);
      ASSERT_NE(plain, nullptr);
      EXPECT_EQ(plain->group_size, 1u);
      EXPECT_EQ(plain->group_count, 3u);
    }
  }
  EXPECT_EQ(sent, 1);
}

TEST(DissemEdge, ReceiverCountsRedundantRows) {
  const graph::Graph g = graph::make_path(8);
  const ResolvedConfig rc = rc_for(g);
  Rng rng(3);
  DisseminationState node(DisseminationState::Config{rc}, 2, false, 1u, &rng);
  radio::PlainPacketMsg m;
  m.packet.id = radio::make_packet_id(0, 0);
  m.packet.payload = {1};
  m.group_id = 0;
  m.group_count = 1;
  m.index_in_group = 0;
  m.group_size = 2;
  node.on_receive(0, radio::Message{1, m});
  node.on_receive(1, radio::Message{1, m});  // duplicate => redundant row
  EXPECT_EQ(node.rows_received(), 2u);
  EXPECT_EQ(node.redundant_rows(), 1u);
  EXPECT_FALSE(node.complete());  // one of two packets known
  m.index_in_group = 1;
  m.packet.id = radio::make_packet_id(0, 1);
  node.on_receive(2, radio::Message{1, m});
  EXPECT_TRUE(node.complete());
}

TEST(DissemEdge, CompleteNodeIgnoresFurtherRows) {
  const graph::Graph g = graph::make_path(8);
  const ResolvedConfig rc = rc_for(g);
  Rng rng(4);
  DisseminationState node(DisseminationState::Config{rc}, 2, false, 1u, &rng);
  radio::PlainPacketMsg m;
  m.packet.id = radio::make_packet_id(0, 0);
  m.packet.payload = {5};
  m.group_id = 0;
  m.group_count = 1;
  m.index_in_group = 0;
  m.group_size = 1;
  node.on_receive(0, radio::Message{1, m});
  ASSERT_TRUE(node.complete());
  const std::uint64_t rows = node.rows_received();
  node.on_receive(1, radio::Message{1, m});
  EXPECT_EQ(node.rows_received(), rows);  // not even counted
}

TEST(DissemEdge, ForwarderSendsOnlyDuringItsPhase) {
  const graph::Graph g = graph::make_path(16);
  const ResolvedConfig rc = rc_for(g);
  Rng rng(5);
  const std::uint32_t dist = 2;
  DisseminationState node(DisseminationState::Config{rc}, 3, false, dist, &rng);
  // Hand it a complete single group via a plain row.
  radio::PlainPacketMsg m;
  m.packet.id = radio::make_packet_id(0, 0);
  m.packet.payload = {1};
  m.group_id = 0;
  m.group_count = 1;
  m.index_in_group = 0;
  m.group_size = 1;
  node.on_receive(0, radio::Message{1, m});
  ASSERT_TRUE(node.complete());

  for (std::uint64_t ph = 0; ph < 8; ++ph) {
    bool sent = false;
    for (std::uint64_t off = 0; off < rc.dissem_phase_rounds; ++off) {
      sent |= node.on_transmit(ph * rc.dissem_phase_rounds + off).has_value();
    }
    if (ph == dist) {
      EXPECT_TRUE(sent) << "phase " << ph;  // whp over forward_epochs draws
    } else {
      EXPECT_FALSE(sent) << "phase " << ph;
    }
  }
}

TEST(DissemEdge, CodedHeadersCarryConsistentMetadata) {
  const graph::Graph g = graph::make_path(16);
  const ResolvedConfig rc = rc_for(g);
  Rng rng(6);
  DisseminationState node(DisseminationState::Config{rc}, 3, false, 1u, &rng);
  radio::PlainPacketMsg m;
  m.packet.id = radio::make_packet_id(0, 0);
  m.packet.payload = {1, 2};
  m.group_id = 0;
  m.group_count = 2;
  m.index_in_group = 0;
  m.group_size = 1;
  node.on_receive(0, radio::Message{1, m});
  int coded_seen = 0;
  for (std::uint64_t off = 0; off < rc.dissem_phase_rounds * 2; ++off) {
    const auto out = node.on_transmit(rc.dissem_phase_rounds + off);
    if (!out.has_value()) continue;
    if (const auto* coded = std::get_if<radio::CodedMsg>(&*out)) {
      EXPECT_EQ(coded->group_id, 0u);
      EXPECT_EQ(coded->group_count, 2u);
      EXPECT_EQ(coded->group_size, 1u);
      ++coded_seen;
    }
  }
  EXPECT_GT(coded_seen, 0);
}

TEST(DissemEdge, PacketsBeforeAnyHeaderIsEmpty) {
  const graph::Graph g = graph::make_path(8);
  const ResolvedConfig rc = rc_for(g);
  Rng rng(7);
  DisseminationState node(DisseminationState::Config{rc}, 1, false, 1u, &rng);
  EXPECT_FALSE(node.complete());
  EXPECT_EQ(node.group_count(), 0u);
  EXPECT_TRUE(node.packets().empty());
}

TEST(DissemEdge, EmptyRootBatchIsCompleteWithZeroGroups) {
  const graph::Graph g = graph::make_path(8);
  const ResolvedConfig rc = rc_for(g);
  Rng rng(8);
  DisseminationState root(DisseminationState::Config{rc}, 0, true, 0u, &rng);
  root.set_root_packets({});
  EXPECT_TRUE(root.complete());
  EXPECT_EQ(root.group_count(), 0u);
  for (std::uint64_t r = 0; r < 100; ++r) {
    EXPECT_FALSE(root.on_transmit(r).has_value());
  }
}

TEST(DissemEdge, UncodedForwarderEmitsOnlyGroupMembers) {
  const graph::Graph g = graph::make_path(16);
  KBroadcastConfig kcfg;
  kcfg.know = radio::Knowledge::exact(g);
  kcfg.coded = false;
  kcfg.group_size = 2;
  const ResolvedConfig rc = resolve(kcfg);
  Rng rng(9);
  DisseminationState node(DisseminationState::Config{rc}, 3, false, 1u, &rng);
  radio::PlainPacketMsg m;
  m.group_id = 0;
  m.group_count = 1;
  m.group_size = 2;
  for (std::uint16_t i = 0; i < 2; ++i) {
    m.packet.id = radio::make_packet_id(0, i);
    m.packet.payload = {static_cast<std::uint8_t>(i)};
    m.index_in_group = i;
    node.on_receive(i, radio::Message{1, m});
  }
  ASSERT_TRUE(node.complete());
  for (std::uint64_t off = 0; off < rc.dissem_phase_rounds; ++off) {
    const auto out = node.on_transmit(rc.dissem_phase_rounds + off);
    if (!out.has_value()) continue;
    const auto* plain = std::get_if<radio::PlainPacketMsg>(&*out);
    ASSERT_NE(plain, nullptr);  // uncoded mode sends plain packets only
    EXPECT_LT(plain->index_in_group, 2u);
    EXPECT_EQ(radio::packet_origin(plain->packet.id), 0u);
  }
}

}  // namespace
}  // namespace radiocast::core
