// Stage 3 tests: OSPG/MSPG/GRAB mechanics and full collection runs on a
// centrally precomputed BFS tree (isolating Stage 3 from Stages 1-2).
#include "core/collection.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "core/runner.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "radio/network.hpp"

namespace radiocast::core {
namespace {

/// NodeProtocol adapter that runs CollectionState standalone from round 0,
/// with parent pointers supplied by a centralized BFS.
class CollectionOnlyNode final : public radio::NodeProtocol {
 public:
  CollectionOnlyNode(const CollectionState::Config& cfg, radio::NodeId self,
                     bool is_root, std::optional<radio::NodeId> parent,
                     std::vector<radio::Packet> packets, Rng rng)
      : rng_(rng), state_(cfg, self, is_root, parent, std::move(packets), &rng_) {}

  std::optional<radio::MessageBody> on_transmit(radio::Round round) override {
    return state_.on_transmit(round);
  }
  void on_receive(radio::Round round, const radio::Message& msg) override {
    state_.on_receive(round, msg);
  }
  bool done() const override { return state_.finished(); }

  CollectionState& state() { return state_; }

 private:
  Rng rng_;
  CollectionState state_;
};

struct CollectionOutcome {
  bool finished = false;
  bool root_has_all = false;
  bool all_acked = true;
  std::uint32_t phases = 0;
  std::uint64_t rounds = 0;
};

CollectionOutcome run_collection(const graph::Graph& g, const Placement& placement,
                                 radio::NodeId root, std::uint64_t seed) {
  KBroadcastConfig kcfg;
  kcfg.know = radio::Knowledge::exact(g);
  const ResolvedConfig rc = resolve(kcfg);
  CollectionState::Config cfg{rc};

  const graph::BfsResult tree = graph::bfs(g, root);
  radio::Network net(g);
  Rng master(seed);
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    std::optional<radio::NodeId> parent;
    if (v != root && tree.dist[v] != graph::kUnreachable) parent = tree.parent[v];
    net.set_protocol(v, std::make_unique<CollectionOnlyNode>(
                            cfg, v, v == root, parent, placement[v], master.split()));
    net.wake_at_start(v);  // Stage 3 starts with every node awake
  }
  const std::vector<radio::Packet> truth = placement_packets(placement);
  const std::uint64_t bound = 3 * collection_rounds_bound(truth.size(), rc) + 1000;
  const bool done = net.run_until_done(bound);

  CollectionOutcome out;
  out.finished = done;
  out.rounds = net.current_round();
  auto& root_node = static_cast<CollectionOnlyNode&>(net.protocol(root));
  out.phases = root_node.state().phases_run();
  std::vector<radio::Packet> got = root_node.state().collected();
  std::sort(got.begin(), got.end(),
            [](const radio::Packet& a, const radio::Packet& b) { return a.id < b.id; });
  out.root_has_all = got == truth;
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    auto& node = static_cast<CollectionOnlyNode&>(net.protocol(v));
    if (!node.state().all_acked()) out.all_acked = false;
  }
  return out;
}

Placement place_at(std::uint32_t n, const std::vector<std::pair<radio::NodeId, int>>& at,
                   Rng& rng) {
  Placement p(n);
  for (const auto& [node, count] : at) {
    for (int i = 0; i < count; ++i) {
      radio::Packet pkt;
      pkt.id = radio::make_packet_id(node, static_cast<std::uint32_t>(p[node].size()));
      pkt.payload.resize(8);
      for (auto& b : pkt.payload) b = static_cast<std::uint8_t>(rng() & 0xff);
      p[node].push_back(std::move(pkt));
    }
  }
  return p;
}

TEST(Collection, SinglePacketOnPath) {
  const graph::Graph g = graph::make_path(10);
  Rng rng(1);
  const Placement p = place_at(10, {{9, 1}}, rng);
  const CollectionOutcome out = run_collection(g, p, 0, 11);
  EXPECT_TRUE(out.finished);
  EXPECT_TRUE(out.root_has_all);
  EXPECT_TRUE(out.all_acked);
  EXPECT_EQ(out.phases, 1u);  // initial estimate >> 1 packet
}

TEST(Collection, ManyPacketsManySources) {
  Rng grng(2);
  const graph::Graph g = graph::make_random_geometric(40, 0.3, grng);
  Rng rng(3);
  const Placement p = place_at(40, {{5, 10}, {17, 7}, {33, 12}, {39, 4}}, rng);
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const CollectionOutcome out = run_collection(g, p, 0, 100 + seed);
    EXPECT_TRUE(out.finished);
    EXPECT_TRUE(out.root_has_all) << "seed " << seed;
    EXPECT_TRUE(out.all_acked);
  }
}

TEST(Collection, RootOwnPacketsAutoCollected) {
  const graph::Graph g = graph::make_star(8);
  Rng rng(4);
  const Placement p = place_at(8, {{0, 5}}, rng);
  const CollectionOutcome out = run_collection(g, p, 0, 5);
  EXPECT_TRUE(out.finished);
  EXPECT_TRUE(out.root_has_all);
  EXPECT_EQ(out.phases, 1u);
}

TEST(Collection, EstimateDoublesWhenKExceedsInitial) {
  // Star with tiny diameter => small initial estimate x0 = (D+log n)·log n.
  // Pack k >> x0 so at least one alarm-driven doubling must happen.
  // Note GRAB(x) routinely over-delivers relative to the estimate (the
  // final MSPG alone has 6·c²log²n slots), so forcing a doubling requires
  // k well past that capacity, not merely past x0.
  const graph::Graph g = graph::make_star(16);
  KBroadcastConfig kcfg;
  kcfg.know = radio::Knowledge::exact(g);
  const ResolvedConfig rc = resolve(kcfg);
  const int k = static_cast<int>(rc.initial_estimate) * 16;

  Rng rng(5);
  const Placement p = place_at(
      16, {{3, k / 4}, {7, k / 4}, {11, k / 4}, {15, k - 3 * (k / 4)}}, rng);
  const CollectionOutcome out = run_collection(g, p, 0, 6);
  EXPECT_TRUE(out.finished);
  EXPECT_TRUE(out.root_has_all);
  EXPECT_GE(out.phases, 2u);
}

TEST(Collection, NoPacketsFinishesFirstPhase) {
  const graph::Graph g = graph::make_path(6);
  Placement p(6);
  const CollectionOutcome out = run_collection(g, p, 0, 7);
  EXPECT_TRUE(out.finished);
  EXPECT_EQ(out.phases, 1u);
  EXPECT_TRUE(out.root_has_all);  // trivially: nothing to collect
}

TEST(Collection, DeepPathManyPackets) {
  const graph::Graph g = graph::make_path(30);
  Rng rng(8);
  const Placement p = place_at(30, {{29, 20}, {15, 20}}, rng);
  const CollectionOutcome out = run_collection(g, p, 0, 9);
  EXPECT_TRUE(out.finished);
  EXPECT_TRUE(out.root_has_all);
  EXPECT_TRUE(out.all_acked);
}

// --- Unit-level state machine checks ---

CollectionState::Config unit_cfg(const graph::Graph& g) {
  KBroadcastConfig kcfg;
  kcfg.know = radio::Knowledge::exact(g);
  return CollectionState::Config{resolve(kcfg)};
}

TEST(CollectionState, RootCollectsAndAcksDataMessage) {
  const graph::Graph g = graph::make_path(3);
  const CollectionState::Config cfg = unit_cfg(g);
  Rng rng(10);
  CollectionState root(cfg, 0, true, std::nullopt, {}, &rng);

  radio::Packet pkt;
  pkt.id = radio::make_packet_id(2, 0);
  pkt.payload = {0xaa};
  radio::Message msg{1, radio::DataMsg{pkt, 0}};
  root.on_receive(3, msg);  // inside the first up window
  ASSERT_EQ(root.collected().size(), 1u);
  EXPECT_EQ(root.collected()[0].id, pkt.id);

  // During the ack window the root emits an AckMsg addressed to the child.
  const GatherWindow w0 = grab_windows(cfg.rc.initial_estimate, cfg.rc)[0];
  bool acked = false;
  for (std::uint64_t r = w0.up_rounds; r < w0.total_rounds(); ++r) {
    const auto out = root.on_transmit(r);
    if (out.has_value()) {
      const auto* ack = std::get_if<radio::AckMsg>(&*out);
      ASSERT_NE(ack, nullptr);
      EXPECT_EQ(ack->packet_id, pkt.id);
      EXPECT_EQ(ack->to, 1u);
      acked = true;
      break;
    }
  }
  EXPECT_TRUE(acked);
}

TEST(CollectionState, RelayForwardsOneRoundLater) {
  const graph::Graph g = graph::make_path(4);
  const CollectionState::Config cfg = unit_cfg(g);
  Rng rng(11);
  CollectionState relay(cfg, 1, false, radio::NodeId{0}, {}, &rng);

  radio::Packet pkt;
  pkt.id = radio::make_packet_id(3, 0);
  radio::Message msg{2, radio::DataMsg{pkt, 1}};
  relay.on_receive(5, msg);
  const auto out = relay.on_transmit(6);
  ASSERT_TRUE(out.has_value());
  const auto* data = std::get_if<radio::DataMsg>(&*out);
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->packet.id, pkt.id);
  EXPECT_EQ(data->to, 0u);
}

TEST(CollectionState, RelayIgnoresDataAddressedElsewhere) {
  const graph::Graph g = graph::make_path(4);
  const CollectionState::Config cfg = unit_cfg(g);
  Rng rng(12);
  CollectionState relay(cfg, 1, false, radio::NodeId{0}, {}, &rng);
  radio::Packet pkt;
  pkt.id = radio::make_packet_id(3, 0);
  radio::Message msg{2, radio::DataMsg{pkt, 2 /*not us*/}};
  relay.on_receive(5, msg);
  EXPECT_FALSE(relay.on_transmit(6).has_value());
}

TEST(CollectionState, SourceMarksAckedAndStopsAlarming) {
  const graph::Graph g = graph::make_path(3);
  const CollectionState::Config cfg = unit_cfg(g);
  Rng rng(13);
  radio::Packet pkt;
  pkt.id = radio::make_packet_id(2, 0);
  CollectionState source(cfg, 2, false, radio::NodeId{1}, {pkt}, &rng);
  EXPECT_FALSE(source.all_acked());
  EXPECT_EQ(source.unacked_count(), 1u);

  radio::Message ack{1, radio::AckMsg{pkt.id, 2}};
  // Deliver the ack inside the first window's ack segment.
  const GatherWindow w0 = grab_windows(cfg.rc.initial_estimate, cfg.rc)[0];
  source.on_receive(w0.up_rounds + 1, ack);
  EXPECT_TRUE(source.all_acked());
  EXPECT_EQ(source.unacked_count(), 0u);
}

TEST(CollectionState, FinishesAfterQuietPhaseAndReportsLength) {
  const graph::Graph g = graph::make_path(3);
  const CollectionState::Config cfg = unit_cfg(g);
  Rng rng(14);
  CollectionState idle(cfg, 1, false, radio::NodeId{0}, {}, &rng);
  const std::uint64_t phase = collection_phase_rounds(cfg.rc.initial_estimate, cfg.rc);
  idle.on_transmit(phase);  // first post-phase poll
  EXPECT_TRUE(idle.finished());
  EXPECT_EQ(idle.finished_at(), phase);
}

TEST(CollectionState, AlarmHeardExtendsToSecondPhase) {
  const graph::Graph g = graph::make_path(3);
  const CollectionState::Config cfg = unit_cfg(g);
  Rng rng(15);
  CollectionState idle(cfg, 1, false, radio::NodeId{0}, {}, &rng);
  const std::uint64_t grab = grab_rounds(cfg.rc.initial_estimate, cfg.rc);
  const std::uint64_t phase = grab + cfg.rc.alarm_rounds;
  idle.on_transmit(grab);  // enter the alarm window
  radio::Message alarm{0, radio::AlarmMsg{}};
  idle.on_receive(grab + 1, alarm);
  idle.on_transmit(phase);  // cross the phase boundary
  EXPECT_FALSE(idle.finished());
  EXPECT_EQ(idle.estimate(), cfg.rc.initial_estimate * 2);
  EXPECT_EQ(idle.phases_run(), 1u);
}

TEST(CollectionState, UnackedSourceArmsAlarm) {
  const graph::Graph g = graph::make_path(3);
  const CollectionState::Config cfg = unit_cfg(g);
  Rng rng(16);
  radio::Packet pkt;
  pkt.id = radio::make_packet_id(2, 0);
  CollectionState source(cfg, 2, false, radio::NodeId{1}, {pkt}, &rng);
  const std::uint64_t grab = grab_rounds(cfg.rc.initial_estimate, cfg.rc);
  // The packet was never acked (we never delivered it): over the alarm
  // window the source must transmit AlarmMsg at least once.
  bool alarmed = false;
  for (std::uint64_t r = grab; r < grab + cfg.rc.alarm_rounds; ++r) {
    const auto out = source.on_transmit(r);
    if (out.has_value() && std::holds_alternative<radio::AlarmMsg>(*out)) {
      alarmed = true;
      break;
    }
  }
  EXPECT_TRUE(alarmed);
  // And the phase must continue.
  source.on_transmit(grab + cfg.rc.alarm_rounds);
  EXPECT_FALSE(source.finished());
}

}  // namespace
}  // namespace radiocast::core
