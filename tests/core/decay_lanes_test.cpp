// Pins the bit-sliced Decay lanes against their scalar reference.
//
// The contract under test (core/decay_lanes.hpp): lane j of the 64-wide
// run is exactly the scalar trial that replays the same per-node word
// stream and extracts bit j of every draw. Every lane is compared on
// several topologies, plus block determinism across thread counts.
#include <gtest/gtest.h>

#include <cstdint>

#include "common/rng.hpp"
#include "core/decay_lanes.hpp"
#include "graph/generators.hpp"

namespace radiocast::core {
namespace {

void expect_all_lanes_match(const graph::Graph& g, const DecayLaneConfig& cfg) {
  const DecayLaneResult sliced = run_decay_lanes(g, cfg);
  for (std::uint32_t lane = 0; lane < 64; ++lane) {
    const std::uint64_t ref = run_decay_lane_reference(g, cfg, lane);
    EXPECT_EQ(sliced.completion_round[lane], ref) << "lane " << lane;
  }
}

TEST(DecayLanes, EveryLaneMatchesScalarReferenceOnGnp) {
  Rng rng(0xdeca11ULL);
  const graph::Graph g = graph::make_gnp_connected(60, 0.15, rng);
  expect_all_lanes_match(g, DecayLaneConfig{});
}

TEST(DecayLanes, EveryLaneMatchesScalarReferenceOnBoundedDegree) {
  Rng rng(0xdeca12ULL);
  const graph::Graph g = graph::make_bounded_degree(120, 4, 0.6, rng);
  DecayLaneConfig cfg;
  cfg.seed = 0x5eedbeefULL;
  cfg.source = 7;
  expect_all_lanes_match(g, cfg);
}

TEST(DecayLanes, EveryLaneMatchesScalarReferenceOnStar) {
  // Star with the center as source: epoch step 0 transmits with p=1/2,
  // exercising the collision word heavily (all leaves hear only the hub).
  const graph::Graph g = graph::make_star(33);
  DecayLaneConfig cfg;
  cfg.epoch_length = 3;
  expect_all_lanes_match(g, cfg);
}

TEST(DecayLanes, ExplicitEpochLengthMatchesReference) {
  Rng rng(0xdeca13ULL);
  const graph::Graph g = graph::make_gnp_connected(40, 0.2, rng);
  DecayLaneConfig cfg;
  cfg.epoch_length = 5;
  cfg.seed = 0x41ULL;
  expect_all_lanes_match(g, cfg);
}

TEST(DecayLanes, AllLanesCompleteOnConnectedGraph) {
  Rng rng(0xdeca14ULL);
  const graph::Graph g = graph::make_gnp_connected(80, 0.12, rng);
  const DecayLaneResult r = run_decay_lanes(g, DecayLaneConfig{});
  EXPECT_EQ(r.lanes_complete, 64u);
  for (std::uint32_t lane = 0; lane < 64; ++lane) {
    EXPECT_NE(r.completion_round[lane], DecayLaneResult::kIncomplete);
    EXPECT_EQ(r.informed_count[lane], g.num_nodes());
  }
}

TEST(DecayLanes, RoundCapLeavesLanesIncomplete) {
  // One round on a path cannot inform the far end.
  const graph::Graph g = graph::make_path(16);
  DecayLaneConfig cfg;
  cfg.max_rounds = 1;
  const DecayLaneResult r = run_decay_lanes(g, cfg);
  EXPECT_EQ(r.rounds_run, 1u);
  EXPECT_EQ(r.lanes_complete, 0u);
  for (std::uint32_t lane = 0; lane < 64; ++lane) {
    EXPECT_EQ(r.completion_round[lane], DecayLaneResult::kIncomplete);
    EXPECT_EQ(run_decay_lane_reference(g, cfg, lane), DecayLaneResult::kIncomplete);
  }
}

TEST(DecayLanes, SingleNodeCompletesImmediately) {
  const graph::Graph g = graph::make_path(1);
  const DecayLaneResult r = run_decay_lanes(g, DecayLaneConfig{});
  EXPECT_EQ(r.lanes_complete, 64u);
  EXPECT_EQ(r.rounds_run, 0u);
  for (std::uint32_t lane = 0; lane < 64; ++lane) {
    EXPECT_EQ(r.completion_round[lane], 0u);
  }
}

TEST(DecayLanes, BlocksAreDeterministicAcrossThreadCounts) {
  Rng rng(0xdeca15ULL);
  const graph::Graph g = graph::make_gnp_connected(50, 0.18, rng);
  DecayLaneConfig cfg;
  cfg.seed = 0xb10c5ULL;

  montecarlo::Options seq;
  seq.threads = 1;
  montecarlo::Options par;
  par.threads = 4;
  const auto a = run_decay_lane_blocks(g, cfg, 6, seq);
  const auto b = run_decay_lane_blocks(g, cfg, 6, par);
  ASSERT_EQ(a.size(), 6u);
  ASSERT_EQ(b.size(), 6u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].rounds_run, b[i].rounds_run) << "block " << i;
    EXPECT_EQ(a[i].completion_round, b[i].completion_round) << "block " << i;
    EXPECT_EQ(a[i].informed_count, b[i].informed_count) << "block " << i;
  }
}

TEST(DecayLanes, BlocksUseDistinctSeeds) {
  Rng rng(0xdeca16ULL);
  const graph::Graph g = graph::make_gnp_connected(50, 0.18, rng);
  const auto blocks = run_decay_lane_blocks(g, DecayLaneConfig{}, 2);
  ASSERT_EQ(blocks.size(), 2u);
  // 64 completion rounds agreeing across independently-seeded blocks
  // would be astronomically unlikely.
  EXPECT_NE(blocks[0].completion_round, blocks[1].completion_round);
}

}  // namespace
}  // namespace radiocast::core
