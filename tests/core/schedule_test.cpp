#include "core/schedule.hpp"

#include <gtest/gtest.h>

#include "core/params.hpp"

namespace radiocast::core {
namespace {

radio::Knowledge small_know() {
  radio::Knowledge k;
  k.n_hat = 64;
  k.delta_hat = 8;
  k.d_hat = 6;
  return k;
}

TEST(Schedule, OspgWindowMatchesPaperFormula) {
  // OSPG(y) = (6y + D) + (3(6y + D) + D) = 24y + 5D rounds.
  for (std::uint64_t y : {1ULL, 10ULL, 100ULL, 12345ULL}) {
    for (std::uint32_t d : {1u, 5u, 40u}) {
      const GatherWindow w = ospg_window(y, d);
      EXPECT_EQ(w.slots, 6 * y);
      EXPECT_EQ(w.up_rounds, 6 * y + d);
      EXPECT_EQ(w.ack_rounds, 3 * (6 * y + d) + d);
      EXPECT_EQ(w.total_rounds(), 24 * y + 5 * d);
      EXPECT_EQ(w.copies, 1u);
    }
  }
}

TEST(Schedule, MspgWindowUsesSquaredEstimate) {
  KBroadcastConfig cfg;
  cfg.know = small_know();
  cfg.grab_c = 3;
  const ResolvedConfig rc = resolve(cfg);
  const GatherWindow w = mspg_window(rc);
  EXPECT_EQ(rc.c_log_n, 3u * 6);  // c * log n = 3 * log2(64)
  EXPECT_EQ(w.slots, 6 * rc.c_log_n * rc.c_log_n);
  EXPECT_EQ(w.copies, rc.c_log_n);
}

TEST(Schedule, GrabCascadeHalvesDownToFloor) {
  KBroadcastConfig cfg;
  cfg.know = small_know();
  const ResolvedConfig rc = resolve(cfg);
  const std::uint64_t x = 1000;
  const auto windows = grab_windows(x, rc);
  ASSERT_GE(windows.size(), 3u);
  // First window covers x, each next halves (floored at c log n), the last
  // gather window before MSPG sits exactly at the floor.
  EXPECT_EQ(windows[0].slots, 6 * x);
  for (std::size_t i = 1; i + 1 < windows.size(); ++i) {
    EXPECT_EQ(windows[i].slots,
              6 * std::max(windows[i - 1].slots / 6 / 2, rc.c_log_n));
  }
  EXPECT_EQ(windows[windows.size() - 2].slots, 6 * rc.c_log_n);
  // MSPG last.
  EXPECT_GT(windows.back().copies, 1u);
  // Offsets are contiguous.
  std::uint64_t offset = 0;
  for (const auto& w : windows) {
    EXPECT_EQ(w.start, offset);
    offset += w.total_rounds();
  }
  EXPECT_EQ(grab_rounds(x, rc), offset);
}

TEST(Schedule, GrabWithTinyEstimateStillHasFloorAndMspg) {
  KBroadcastConfig cfg;
  cfg.know = small_know();
  const ResolvedConfig rc = resolve(cfg);
  const auto windows = grab_windows(1, rc);
  ASSERT_EQ(windows.size(), 2u);  // floor OSPG + MSPG
  EXPECT_EQ(windows[0].slots, 6 * rc.c_log_n);
}

TEST(Schedule, GrabLengthIsLinearPlusLogTerms) {
  // GRAB(x) = O(x + D log x + log^2 n): doubling x roughly doubles the
  // length once x dominates.
  KBroadcastConfig cfg;
  cfg.know = small_know();
  const ResolvedConfig rc = resolve(cfg);
  const std::uint64_t big = 1 << 16;
  const double r1 = static_cast<double>(grab_rounds(big, rc));
  const double r2 = static_cast<double>(grab_rounds(2 * big, rc));
  EXPECT_GT(r2 / r1, 1.7);
  EXPECT_LT(r2 / r1, 2.3);
}

TEST(Schedule, CollectionPhaseAddsAlarm) {
  KBroadcastConfig cfg;
  cfg.know = small_know();
  const ResolvedConfig rc = resolve(cfg);
  EXPECT_EQ(collection_phase_rounds(100, rc), grab_rounds(100, rc) + rc.alarm_rounds);
}

TEST(Schedule, CollectionBoundCoversDoubling) {
  KBroadcastConfig cfg;
  cfg.know = small_know();
  const ResolvedConfig rc = resolve(cfg);
  // The bound for larger k is at least the bound for smaller k and grows
  // roughly linearly for k >> x0.
  EXPECT_LE(collection_rounds_bound(10, rc), collection_rounds_bound(1000, rc));
  const double b1 = static_cast<double>(collection_rounds_bound(1 << 16, rc));
  const double b2 = static_cast<double>(collection_rounds_bound(1 << 17, rc));
  EXPECT_GT(b2 / b1, 1.5);
  EXPECT_LT(b2 / b1, 2.6);
}

TEST(Schedule, DisseminationBoundScalesWithGroups) {
  KBroadcastConfig cfg;
  cfg.know = small_know();
  const ResolvedConfig rc = resolve(cfg);
  const std::uint64_t one_group = dissemination_rounds_bound(rc.group_size, rc);
  const std::uint64_t ten_groups = dissemination_rounds_bound(10 * rc.group_size, rc);
  EXPECT_GT(ten_groups, one_group);
  // Spacing * 9 extra groups of phases.
  EXPECT_EQ(ten_groups - one_group,
            9ull * rc.group_spacing * rc.dissem_phase_rounds);
}

TEST(Params, ResolveDefaults) {
  KBroadcastConfig cfg;
  cfg.know = small_know();
  const ResolvedConfig rc = resolve(cfg);
  EXPECT_EQ(rc.log_n, 6u);
  EXPECT_EQ(rc.log_delta, 3u);
  EXPECT_EQ(rc.leader_probes, 6u);
  EXPECT_EQ(rc.group_size, rc.log_n);
  EXPECT_EQ(rc.group_spacing, 3u);
  EXPECT_TRUE(rc.coded);
  EXPECT_EQ(rc.initial_estimate, (6ull + 6) * 6);
  EXPECT_EQ(rc.stage1_rounds,
            static_cast<std::uint64_t>(rc.leader_probes) * rc.leader_probe_epochs *
                rc.log_delta);
  EXPECT_EQ(rc.stage2_rounds,
            static_cast<std::uint64_t>(rc.bfs_phases) * rc.bfs_phase_rounds);
  EXPECT_EQ(rc.stage3_start(), rc.stage1_rounds + rc.stage2_rounds);
  EXPECT_GE(rc.dissem_phase_rounds, rc.group_size);
}

TEST(Params, ExplicitOverridesRespected) {
  KBroadcastConfig cfg;
  cfg.know = small_know();
  cfg.group_size = 4;
  cfg.forward_epochs = 7;
  cfg.group_spacing = 5;
  cfg.coded = false;
  cfg.alarm_epochs = 9;
  const ResolvedConfig rc = resolve(cfg);
  EXPECT_EQ(rc.group_size, 4u);
  EXPECT_EQ(rc.forward_epochs, 7u);
  EXPECT_EQ(rc.group_spacing, 5u);
  EXPECT_FALSE(rc.coded);
  EXPECT_EQ(rc.alarm_epochs, 9u);
  EXPECT_EQ(rc.alarm_rounds, 9ull * rc.log_delta);
}

}  // namespace
}  // namespace radiocast::core
