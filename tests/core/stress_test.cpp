// Moderate-scale end-to-end runs: larger n and k than the unit grids, to
// catch scaling bugs (schedule arithmetic overflow, state-machine drift,
// decoder widths) that small fixtures cannot. Runtime-budgeted to a few
// seconds total.
#include <gtest/gtest.h>

#include "baselines/uncoded_pipeline.hpp"
#include "common/rng.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"

namespace radiocast::core {
namespace {

TEST(Stress, HundredTwentyEightNodesFiveTwelvePackets) {
  Rng grng(1);
  const graph::Graph g = graph::make_random_geometric(128, 0.18, grng);
  KBroadcastConfig cfg;
  cfg.know = radio::Knowledge::exact(g);
  Rng prng(2);
  const Placement p =
      make_placement(g.num_nodes(), 512, PlacementMode::kRandom, 16, prng);
  const RunResult r = run_kbroadcast(g, cfg, p, 3);
  EXPECT_TRUE(r.delivered_all);
  EXPECT_TRUE(r.leader_ok);
  EXPECT_TRUE(r.bfs_ok);
  // The amortized cost at this size should already be far below the
  // small-k fixed-cost regime.
  EXPECT_LT(r.amortized_rounds_per_packet(), 500.0);
}

TEST(Stress, DeepPathLargeK) {
  const graph::Graph g = graph::make_path(96);
  KBroadcastConfig cfg;
  cfg.know = radio::Knowledge::exact(g);
  Rng prng(4);
  const Placement p =
      make_placement(g.num_nodes(), 128, PlacementMode::kRandom, 8, prng);
  const RunResult r = run_kbroadcast(g, cfg, p, 5);
  EXPECT_TRUE(r.delivered_all);
  EXPECT_TRUE(r.leader_ok);
}

TEST(Stress, HighDegreeStarLargeK) {
  const graph::Graph g = graph::make_star(128);
  KBroadcastConfig cfg;
  cfg.know = radio::Knowledge::exact(g);
  Rng prng(6);
  const Placement p =
      make_placement(g.num_nodes(), 256, PlacementMode::kRandom, 8, prng);
  const RunResult r = run_kbroadcast(g, cfg, p, 7);
  EXPECT_TRUE(r.delivered_all);
}

TEST(Stress, AllNodesSourceOnePacket) {
  // The all-to-all gossip workload (k = n), the paper's motivating case
  // for topology learning.
  Rng grng(8);
  const graph::Graph g = graph::make_gnp_connected(96, 0.06, grng);
  KBroadcastConfig cfg;
  cfg.know = radio::Knowledge::exact(g);
  Placement p(g.num_nodes());
  Rng prng(9);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    radio::Packet pkt;
    pkt.id = radio::make_packet_id(v, 0);
    pkt.payload.resize(16);
    for (auto& b : pkt.payload) b = static_cast<std::uint8_t>(prng() & 0xff);
    p[v].push_back(std::move(pkt));
  }
  const RunResult r = run_kbroadcast(g, cfg, p, 10);
  EXPECT_TRUE(r.delivered_all);
  EXPECT_EQ(r.k, g.num_nodes());
}

TEST(Stress, UncodedBaselineAtScaleStillCorrect) {
  Rng grng(11);
  const graph::Graph g = graph::make_random_geometric(96, 0.2, grng);
  const radio::Knowledge know = radio::Knowledge::exact(g);
  Rng prng(12);
  const Placement p =
      make_placement(g.num_nodes(), 128, PlacementMode::kRandom, 8, prng);
  const RunResult r =
      baselines::run_algo(baselines::Algo::kUncodedPipeline, g, know, p, 13);
  EXPECT_TRUE(r.delivered_all);
}

}  // namespace
}  // namespace radiocast::core
