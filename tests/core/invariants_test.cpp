// Direct verification of the paper's two central safety arguments, using
// interceptors on live end-to-end runs:
//
//  1. Pipelining disjointness (Section 2.4): at any dissemination round,
//     the BFS layers transmitting coded/plain traffic are >= spacing
//     layers apart — so no receiver can hear two groups at once.
//
//  2. Acknowledgment soundness (Section 2.3): the root only ever
//     acknowledges packets it actually holds, and every source that ends
//     acked has its packet at the root ("no phantom acks").
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "common/rng.hpp"
#include "core/protocol.hpp"
#include "core/runner.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "radio/interceptor.hpp"
#include "radio/network.hpp"

namespace radiocast::core {
namespace {

TEST(Invariants, DisseminationLayersStaySpacingApart) {
  Rng grng(1);
  const graph::Graph g = graph::make_random_geometric(40, 0.3, grng);
  KBroadcastConfig cfg;
  cfg.know = radio::Knowledge::exact(g);
  const ResolvedConfig rc = resolve(cfg);
  Rng prng(2);
  const Placement placement =
      make_placement(g.num_nodes(), 36, PlacementMode::kRandom, 8, prng);

  // True BFS distances from the expected leader (max-id packet holder).
  radio::NodeId leader = 0;
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!placement[v].empty()) leader = std::max(leader, v);
  }
  const graph::BfsResult tree = graph::bfs(g, leader);

  // round -> set of transmitting layers (for dissemination traffic).
  auto layers_per_round =
      std::make_shared<std::map<radio::Round, std::set<std::uint32_t>>>();

  radio::Network net(g);
  Rng master(3);
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    auto inner = std::make_unique<KBroadcastNode>(rc, v, placement[v], master.split());
    auto wrapper = std::make_unique<radio::InterceptingProtocol>(std::move(inner));
    const std::uint32_t dist = tree.dist[v];
    wrapper->set_transmit_hook(
        [layers_per_round, dist](radio::Round round,
                                 const std::optional<radio::MessageBody>& body) {
          if (!body.has_value()) return;
          if (std::holds_alternative<radio::CodedMsg>(*body) ||
              std::holds_alternative<radio::PlainPacketMsg>(*body)) {
            (*layers_per_round)[round].insert(dist);
          }
        });
    net.set_protocol(v, std::move(wrapper));
    if (!placement[v].empty()) net.wake_at_start(v);
  }
  ASSERT_TRUE(net.run_until_done(4'000'000));

  std::size_t multi_layer_rounds = 0;
  for (const auto& [round, layers] : *layers_per_round) {
    if (layers.size() < 2) continue;
    ++multi_layer_rounds;
    // Consecutive active layers must differ by >= spacing (3).
    std::uint32_t prev = *layers.begin();
    for (auto it = std::next(layers.begin()); it != layers.end(); ++it) {
      EXPECT_GE(*it - prev, rc.group_spacing)
          << "round " << round << ": layers too close";
      prev = *it;
    }
  }
  // The pipeline genuinely overlaps groups (otherwise this test is vacuous).
  EXPECT_GT(multi_layer_rounds, 0u);
}

TEST(Invariants, NoPhantomAcks) {
  Rng grng(4);
  const graph::Graph g = graph::make_gnp_connected(28, 0.2, grng);
  KBroadcastConfig cfg;
  cfg.know = radio::Knowledge::exact(g);
  const ResolvedConfig rc = resolve(cfg);
  Rng prng(5);
  const Placement placement =
      make_placement(g.num_nodes(), 20, PlacementMode::kRandom, 8, prng);

  radio::NodeId leader = 0;
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!placement[v].empty()) leader = std::max(leader, v);
  }

  radio::Network net(g);
  Rng master(6);
  std::vector<const KBroadcastNode*> nodes(g.num_nodes());
  auto violations = std::make_shared<int>(0);
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    auto inner = std::make_unique<KBroadcastNode>(rc, v, placement[v], master.split());
    const KBroadcastNode* raw = inner.get();
    nodes[v] = raw;
    auto wrapper = std::make_unique<radio::InterceptingProtocol>(std::move(inner));
    if (v == leader) {
      // Every ack the root transmits must name a packet in its collected
      // set at that moment.
      wrapper->set_transmit_hook(
          [raw, violations](radio::Round, const std::optional<radio::MessageBody>& b) {
            if (!b.has_value()) return;
            const auto* ack = std::get_if<radio::AckMsg>(&*b);
            if (ack == nullptr) return;
            const CollectionState* coll = raw->collection();
            if (coll == nullptr) {
              ++*violations;
              return;
            }
            bool found = false;
            for (const radio::Packet& p : coll->collected()) {
              found |= p.id == ack->packet_id;
            }
            if (!found) ++*violations;
          });
    }
    net.set_protocol(v, std::move(wrapper));
    if (!placement[v].empty()) net.wake_at_start(v);
  }
  ASSERT_TRUE(net.run_until_done(4'000'000));
  EXPECT_EQ(*violations, 0);

  // Soundness at the sources: acked => the root holds it.
  const CollectionState* root_coll = nodes[leader]->collection();
  ASSERT_NE(root_coll, nullptr);
  std::set<radio::PacketId> at_root;
  for (const radio::Packet& p : root_coll->collected()) at_root.insert(p.id);
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (placement[v].empty() || v == leader) continue;
    const CollectionState* coll = nodes[v]->collection();
    ASSERT_NE(coll, nullptr);
    ASSERT_TRUE(coll->all_acked());
    for (const radio::Packet& p : placement[v]) {
      EXPECT_EQ(at_root.count(p.id), 1u) << "acked packet missing at root";
    }
  }
}

TEST(Invariants, RandomizedSoak) {
  // Catch-all: random (family, n, k, placement) configurations end-to-end.
  Rng meta(20260705);
  const auto& families = graph::named_families();
  for (int trial = 0; trial < 12; ++trial) {
    const std::string family =
        families[meta.next_below(families.size())];
    const auto n = static_cast<std::uint32_t>(16 + meta.next_below(40));
    const auto k = static_cast<std::uint32_t>(1 + meta.next_below(50));
    const auto mode = static_cast<PlacementMode>(meta.next_below(3));
    Rng grng(meta());
    const graph::Graph g = graph::make_named(family, n, grng);
    KBroadcastConfig cfg;
    cfg.know = radio::Knowledge::exact(g);
    Rng prng(meta());
    const Placement p = make_placement(g.num_nodes(), k, mode, 8, prng);
    const RunResult r = run_kbroadcast(g, cfg, p, meta());
    EXPECT_TRUE(r.delivered_all)
        << "family=" << family << " n=" << g.num_nodes() << " k=" << k
        << " trial=" << trial;
  }
}

}  // namespace
}  // namespace radiocast::core
