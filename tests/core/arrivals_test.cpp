#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "core/dynamic.hpp"

namespace radiocast::core {
namespace {

TEST(MakeArrivals, CountAndRange) {
  Rng rng(1);
  const auto arrivals = make_arrivals(10, 50, 1000, 8, rng);
  EXPECT_EQ(arrivals.size(), 50u);
  for (const Arrival& a : arrivals) {
    EXPECT_LT(a.round, 1000u);
    EXPECT_LT(a.node, 10u);
    EXPECT_EQ(a.packet.payload.size(), 8u);
  }
}

TEST(MakeArrivals, SortedByRound) {
  Rng rng(2);
  const auto arrivals = make_arrivals(6, 80, 5000, 4, rng);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_LE(arrivals[i - 1].round, arrivals[i].round);
  }
}

TEST(MakeArrivals, PacketIdsUniqueAndMatchNode) {
  Rng rng(3);
  const auto arrivals = make_arrivals(5, 60, 200, 4, rng);
  std::set<radio::PacketId> ids;
  for (const Arrival& a : arrivals) {
    EXPECT_TRUE(ids.insert(a.packet.id).second) << "duplicate id";
    EXPECT_EQ(radio::packet_origin(a.packet.id), a.node);
  }
}

TEST(MakeArrivals, ZeroSpreadAllAtRoundZero) {
  Rng rng(4);
  const auto arrivals = make_arrivals(4, 10, 0, 4, rng);
  for (const Arrival& a : arrivals) EXPECT_EQ(a.round, 0u);
}

TEST(MakeArrivals, DeterministicGivenRng) {
  Rng a(5), b(5);
  const auto x = make_arrivals(8, 30, 100, 4, a);
  const auto y = make_arrivals(8, 30, 100, 4, b);
  ASSERT_EQ(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(x[i].round, y[i].round);
    EXPECT_EQ(x[i].node, y[i].node);
    EXPECT_EQ(x[i].packet.id, y[i].packet.id);
    EXPECT_EQ(x[i].packet.payload, y[i].packet.payload);
  }
}

TEST(DynamicConfig, WindowScalesWithCapacity) {
  KBroadcastConfig kcfg;
  kcfg.know.n_hat = 64;
  kcfg.know.delta_hat = 8;
  kcfg.know.d_hat = 6;
  DynamicConfig small;
  small.rc = resolve(kcfg);
  small.batch_capacity = 6;  // one group
  DynamicConfig big = small;
  big.batch_capacity = 60;  // ten groups
  EXPECT_LT(small.dissemination_window(), big.dissemination_window());
  EXPECT_EQ(big.dissemination_window() - small.dissemination_window(),
            9ull * small.rc.group_spacing * small.rc.dissem_phase_rounds);
}

TEST(DynamicConfig, DefaultCapacityIsInitialEstimate) {
  KBroadcastConfig kcfg;
  kcfg.know.n_hat = 64;
  kcfg.know.delta_hat = 8;
  kcfg.know.d_hat = 6;
  DynamicConfig cfg;
  cfg.rc = resolve(kcfg);
  EXPECT_EQ(cfg.resolved_capacity(), cfg.rc.initial_estimate);
  cfg.batch_capacity = 7;
  EXPECT_EQ(cfg.resolved_capacity(), 7u);
}

}  // namespace
}  // namespace radiocast::core
