// Failure-injection matrix: each protocol stage exercised in isolation
// under reception loss, plus the dynamic variant under loss — verifying
// that every recovery mechanism (retries, alarms, redundancy) does its
// job where the paper's analysis places it.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/uncoded_pipeline.hpp"
#include "common/rng.hpp"
#include "core/dynamic.hpp"
#include "core/protocol.hpp"
#include "core/runner.hpp"
#include "core/schedule.hpp"
#include "graph/generators.hpp"
#include "protocols/bfs_construction.hpp"
#include "protocols/bgi_broadcast.hpp"
#include "radio/network.hpp"

namespace radiocast::core {
namespace {

TEST(FaultMatrix, BgiFloodToleratesLoss) {
  // BGI's redundancy (every holder keeps transmitting) makes the flood
  // loss-tolerant without any protocol change.
  Rng grng(1);
  const graph::Graph g = graph::make_random_geometric(40, 0.3, grng);
  const radio::Knowledge know = radio::Knowledge::exact(g);
  protocols::BgiBroadcastNode::Config cfg;
  cfg.know = know;
  for (const double loss : {0.05, 0.15}) {
    radio::Network net(g);
    net.set_fault_model({loss, 42});
    Rng master(2);
    for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
      net.set_protocol(v, std::make_unique<protocols::BgiBroadcastNode>(
                              cfg, v == 0,
                              v == 0 ? std::optional<radio::MessageBody>(
                                           radio::AlarmMsg{})
                                     : std::nullopt,
                              master.split()));
    }
    net.wake_at_start(0);
    const std::uint64_t window =
        static_cast<std::uint64_t>(protocols::bgi_default_epochs(know)) *
        know.log_delta();
    EXPECT_TRUE(net.run_until_done(window)) << "loss=" << loss;
  }
}

TEST(FaultMatrix, BfsStaysValidUnderMildLoss) {
  // A lost construction message can delay a node into a later phase (it
  // may adopt a same-layer neighbor, recording distance+1), so we require
  // tree validity under the weaker invariant: parents are neighbors and
  // recorded distances decrease towards the root.
  Rng grng(3);
  const graph::Graph g = graph::make_random_geometric(36, 0.32, grng);
  const radio::Knowledge know = radio::Knowledge::exact(g);
  protocols::BfsBuildState::Config cfg;
  cfg.know = know;
  cfg.epochs_per_phase = 6 * know.log_n();
  cfg.extra_phases = 4;

  radio::Network net(g);
  net.set_fault_model({0.05, 7});
  Rng master(4);
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    net.set_protocol(
        v, std::make_unique<protocols::BfsConstructionNode>(cfg, v, v == 0,
                                                            master.split()));
  }
  net.wake_at_start(0);
  const std::uint64_t total = static_cast<std::uint64_t>(know.d_hat + 4) *
                              cfg.epochs_per_phase * know.log_delta();
  for (std::uint64_t r = 0; r < total; ++r) net.step();

  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& node =
        static_cast<const protocols::BfsConstructionNode&>(net.protocol(v));
    ASSERT_TRUE(node.state().has_distance()) << "node " << v;
    if (v == 0) continue;
    const radio::NodeId parent = node.state().parent();
    EXPECT_TRUE(g.has_edge(v, parent));
    const auto& parent_node =
        static_cast<const protocols::BfsConstructionNode&>(net.protocol(parent));
    ASSERT_TRUE(parent_node.state().has_distance());
    EXPECT_EQ(parent_node.state().distance() + 1, node.state().distance());
  }
}

TEST(FaultMatrix, UncodedPipelineSurvivesLossToo) {
  Rng grng(5);
  const graph::Graph g = graph::make_gnp_connected(28, 0.2, grng);
  const radio::Knowledge know = radio::Knowledge::exact(g);
  Rng prng(6);
  const Placement p = make_placement(28, 16, PlacementMode::kRandom, 8, prng);
  radio::FaultModel faults{0.05, 99};
  const RunResult r = run_kbroadcast(g, baselines::uncoded_pipeline_config(know), p,
                                     7, 20'000'000, faults);
  EXPECT_TRUE(r.delivered_all);
}

TEST(FaultMatrix, DynamicVariantSurvivesLoss) {
  Rng grng(8);
  const graph::Graph g = graph::make_random_geometric(24, 0.4, grng);
  KBroadcastConfig kcfg;
  kcfg.know = radio::Knowledge::exact(g);
  DynamicConfig cfg;
  cfg.rc = resolve(kcfg);

  const std::uint64_t epoch =
      collection_phase_rounds(cfg.rc.initial_estimate, cfg.rc) +
      cfg.dissemination_window();
  Rng arng(9);
  std::vector<Arrival> arrivals = make_arrivals(24, 16, 2 * epoch, 8, arng);
  // The dynamic runner has no fault hook; drive the network directly.
  radio::Network net(g);
  net.set_fault_model({0.03, 17});
  Rng master(10);
  std::vector<DynamicBroadcastNode*> nodes(24);
  for (radio::NodeId v = 0; v < 24; ++v) {
    auto node = std::make_unique<DynamicBroadcastNode>(cfg, v, master.split());
    nodes[v] = node.get();
    net.set_protocol(v, std::move(node));
    net.wake_at_start(v);
  }
  std::size_t next = 0;
  const std::uint64_t horizon = cfg.rc.stage3_start() + 8 * epoch;
  for (std::uint64_t round = 0; round < horizon; ++round) {
    while (next < arrivals.size() && arrivals[next].round <= round) {
      nodes[arrivals[next].node]->inject(arrivals[next].packet);
      ++next;
    }
    net.step();
  }
  // Every injected packet must have reached every node.
  for (const Arrival& a : arrivals) {
    for (radio::NodeId v = 0; v < 24; ++v) {
      EXPECT_EQ(nodes[v]->delivered().count(a.packet.id), 1u)
          << "packet " << a.packet.id << " missing at node " << v;
    }
  }
}

/// One full k-broadcast run, driven directly so per-node protocol state
/// stays inspectable after completion (run_kbroadcast owns its network).
struct CdOutcome {
  bool delivered = false;
  std::uint64_t collision_slots = 0;
  std::uint64_t on_collision_callbacks = 0;
  std::uint64_t fault_drops = 0;
};

CdOutcome run_fault_cd(double loss, bool collision_detection) {
  Rng grng(40);
  const graph::Graph g = graph::make_gnp_connected(24, 0.25, grng);
  KBroadcastConfig kcfg;
  kcfg.know = radio::Knowledge::exact(g);
  const ResolvedConfig rc = resolve(kcfg);
  Rng prng(41);
  const Placement placement =
      make_placement(24, 8, PlacementMode::kRandom, 8, prng);
  std::vector<radio::Packet> truth = placement_packets(placement);

  radio::Network net(g);
  if (collision_detection) net.enable_collision_detection(true);
  if (loss > 0.0) net.set_fault_model({loss, 4242});
  Rng master(42);
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    Rng child = master.split();
    net.set_protocol(v,
                     std::make_unique<KBroadcastNode>(rc, v, placement[v], child));
    if (!placement[v].empty()) net.wake_at_start(v);
  }
  // Generous headroom: lossy runs legitimately overshoot the fault-free
  // analytic bound when a lost ack forces extra alarm phases.
  const bool done =
      net.run_until_done(20 * total_rounds_bound(truth.size(), rc));

  CdOutcome out;
  out.delivered = done;
  out.collision_slots = net.trace().counters().collision_slots;
  out.fault_drops = net.trace().counters().fault_drops;
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& node = static_cast<const KBroadcastNode&>(net.protocol(v));
    out.on_collision_callbacks += node.collisions_observed();
  }
  return out;
}

class FaultCdMatrix : public ::testing::TestWithParam<double> {};

// Every fault rate of the matrix also runs under the collision-detection
// ablation: delivery must hold in both modes, the engine must fire exactly
// one on_collision callback per collision slot with CD on, and none with
// CD off (the paper's model — collisions indistinguishable from silence).
TEST_P(FaultCdMatrix, DeliversAndAccountsCollisionCallbacks) {
  const double loss = GetParam();
  const CdOutcome off = run_fault_cd(loss, /*collision_detection=*/false);
  const CdOutcome on = run_fault_cd(loss, /*collision_detection=*/true);

  EXPECT_TRUE(off.delivered) << "loss=" << loss << " cd=off";
  EXPECT_TRUE(on.delivered) << "loss=" << loss << " cd=on";
  EXPECT_EQ(off.on_collision_callbacks, 0u) << "loss=" << loss;
  EXPECT_EQ(on.on_collision_callbacks, on.collision_slots)
      << "loss=" << loss;
  EXPECT_GT(on.collision_slots, 0u) << "loss=" << loss;
  if (loss > 0.0) {
    EXPECT_GT(off.fault_drops, 0u) << "loss=" << loss;
    EXPECT_GT(on.fault_drops, 0u) << "loss=" << loss;
  } else {
    EXPECT_EQ(off.fault_drops, 0u);
    EXPECT_EQ(on.fault_drops, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, FaultCdMatrix,
                         ::testing::Values(0.0, 0.01, 0.05, 0.1));

TEST(FaultMatrix, HeavyLossEventuallyBreaksWhpClaims) {
  // Sanity check of the harness itself: at absurd loss (60%) the protocol
  // must fail visibly (timeout), not silently claim success.
  Rng grng(11);
  const graph::Graph g = graph::make_gnp_connected(20, 0.25, grng);
  const radio::Knowledge know = radio::Knowledge::exact(g);
  Rng prng(12);
  const Placement p = make_placement(20, 12, PlacementMode::kRandom, 8, prng);
  radio::FaultModel faults{0.6, 5};
  const RunResult r = run_kbroadcast(g, baselines::coded_config(know), p, 13,
                                     300'000, faults);
  EXPECT_FALSE(r.delivered_all);
  EXPECT_GT(r.counters.fault_drops, 0u);
}

}  // namespace
}  // namespace radiocast::core
