// Direct observation of Lemma 7's induction: in the dissemination stage,
// every node at distance d holds group j by the end of phase
// spacing·j + d — the wavefront property the total-time bound rests on.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "core/dissemination.hpp"
#include "core/runner.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "radio/network.hpp"

namespace radiocast::core {
namespace {

class DissemNode final : public radio::NodeProtocol {
 public:
  DissemNode(const DisseminationState::Config& cfg, radio::NodeId self, bool is_root,
             std::optional<std::uint32_t> dist, Rng rng)
      : rng_(rng), state_(cfg, self, is_root, dist, &rng_) {}
  std::optional<radio::MessageBody> on_transmit(radio::Round round) override {
    return state_.on_transmit(round);
  }
  void on_receive(radio::Round round, const radio::Message& msg) override {
    state_.on_receive(round, msg);
  }
  bool done() const override { return state_.complete(); }
  DisseminationState& state() { return state_; }

 private:
  Rng rng_;
  DisseminationState state_;
};

TEST(PipelineTiming, WavefrontReachesLayerDInPhaseSpacingJPlusD) {
  Rng grng(1);
  const graph::Graph g = graph::make_random_geometric(48, 0.3, grng);
  KBroadcastConfig kcfg;
  kcfg.know = radio::Knowledge::exact(g);
  const ResolvedConfig rc = resolve(kcfg);
  const std::uint32_t k = 3 * rc.group_size;  // three groups in flight

  Rng prng(2);
  std::vector<radio::Packet> packets;
  for (std::uint32_t i = 0; i < k; ++i) {
    radio::Packet p;
    p.id = radio::make_packet_id(0, i);
    p.payload.resize(8);
    for (auto& b : p.payload) b = static_cast<std::uint8_t>(prng() & 0xff);
    packets.push_back(std::move(p));
  }

  const graph::BfsResult tree = graph::bfs(g, 0);
  radio::Network net(g);
  Rng master(3);
  std::vector<DissemNode*> nodes(g.num_nodes());
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    std::optional<std::uint32_t> dist;
    if (tree.dist[v] != graph::kUnreachable) dist = tree.dist[v];
    auto node = std::make_unique<DissemNode>(DisseminationState::Config{rc}, v,
                                             v == 0, dist, master.split());
    nodes[v] = node.get();
    net.set_protocol(v, std::move(node));
    net.wake_at_start(v);
  }
  nodes[0]->state().set_root_packets(packets);

  // Step phase by phase; at each phase boundary check the wavefront: every
  // node at distance d must have decoded group j once phase spacing*j + d
  // has completed.
  const std::uint32_t max_dist = tree.eccentricity;
  const std::uint64_t phases = rc.group_spacing * 3 + max_dist + 2;
  std::size_t checks = 0;
  for (std::uint64_t ph = 0; ph < phases; ++ph) {
    for (std::uint64_t r = 0; r < rc.dissem_phase_rounds; ++r) net.step();
    for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
      const std::uint32_t d = tree.dist[v];
      for (std::uint32_t j = 0; j < 3; ++j) {
        const std::uint64_t due = rc.group_spacing * j + d;
        if (ph < due) continue;
        // Group j must be decoded: count it via the node's packet set.
        std::size_t have = 0;
        for (const radio::Packet& p : nodes[v]->state().packets()) {
          if (radio::packet_seq(p.id) / rc.group_size == j) ++have;
        }
        const std::size_t expected =
            std::min<std::size_t>(rc.group_size, k - j * rc.group_size);
        EXPECT_EQ(have, expected)
            << "node " << v << " (d=" << d << ") missing group " << j
            << " after phase " << ph;
        ++checks;
      }
    }
  }
  EXPECT_GT(checks, 0u);
}

TEST(PipelineTiming, CompletionWithinPaperPhaseBudget) {
  // Lemma 7: D + spacing*g phases suffice. Measure the actual completion
  // phase and require it within the paper's budget (+1 slack phase).
  Rng grng(4);
  const graph::Graph g = graph::make_gnp_connected(40, 0.12, grng);
  KBroadcastConfig kcfg;
  kcfg.know = radio::Knowledge::exact(g);
  const ResolvedConfig rc = resolve(kcfg);
  const std::uint32_t groups = 4;
  const std::uint32_t k = groups * rc.group_size;

  Rng prng(5);
  std::vector<radio::Packet> packets;
  for (std::uint32_t i = 0; i < k; ++i) {
    radio::Packet p;
    p.id = radio::make_packet_id(0, i);
    p.payload.resize(8);
    packets.push_back(std::move(p));
  }
  const graph::BfsResult tree = graph::bfs(g, 0);
  radio::Network net(g);
  Rng master(6);
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    std::optional<std::uint32_t> dist;
    if (tree.dist[v] != graph::kUnreachable) dist = tree.dist[v];
    auto node = std::make_unique<DissemNode>(DisseminationState::Config{rc}, v,
                                             v == 0, dist, master.split());
    if (v == 0) node->state().set_root_packets(packets);
    net.set_protocol(v, std::move(node));
    net.wake_at_start(v);
  }
  const std::uint64_t budget_phases =
      rc.group_spacing * (groups - 1) + tree.eccentricity + 2;
  const bool done = net.run_until_done(budget_phases * rc.dissem_phase_rounds);
  EXPECT_TRUE(done);
  const std::uint64_t completion_phase =
      (net.current_round() + rc.dissem_phase_rounds - 1) / rc.dissem_phase_rounds;
  EXPECT_LE(completion_phase, budget_phases);
}

}  // namespace
}  // namespace radiocast::core
