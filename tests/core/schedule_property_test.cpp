// Parameterized properties of the schedule arithmetic over a grid of
// Knowledge values: window contiguity, monotonicity in every parameter,
// and the exact paper formulas — the foundation of zero-communication
// synchronization.
#include <gtest/gtest.h>

#include "core/schedule.hpp"

namespace radiocast::core {
namespace {

struct KnowCase {
  std::uint32_t n, delta, d;
};

class ScheduleGrid : public ::testing::TestWithParam<KnowCase> {
 protected:
  ResolvedConfig rc() const {
    KBroadcastConfig cfg;
    cfg.know.n_hat = GetParam().n;
    cfg.know.delta_hat = GetParam().delta;
    cfg.know.d_hat = GetParam().d;
    return resolve(cfg);
  }
};

TEST_P(ScheduleGrid, GrabWindowsAreContiguousAndOrdered) {
  const ResolvedConfig c = rc();
  for (const std::uint64_t x :
       {std::uint64_t{1}, c.initial_estimate, 4 * c.initial_estimate}) {
    const auto windows = grab_windows(x, c);
    ASSERT_GE(windows.size(), 2u);
    std::uint64_t offset = 0;
    for (std::size_t i = 0; i < windows.size(); ++i) {
      EXPECT_EQ(windows[i].start, offset);
      EXPECT_GT(windows[i].up_rounds, 0u);
      EXPECT_EQ(windows[i].ack_rounds, 3 * windows[i].up_rounds + c.know.d_hat);
      offset = windows[i].end();
      // OSPG slot counts never increase along the cascade (halving), and
      // only the final MSPG window has copies > 1.
      if (i + 2 < windows.size()) {
        EXPECT_GE(windows[i].slots, windows[i + 1].slots);
      }
      EXPECT_EQ(windows[i].copies > 1, i + 1 == windows.size());
    }
    EXPECT_EQ(grab_rounds(x, c), offset);
  }
}

TEST_P(ScheduleGrid, LengthsMonotoneInEstimate) {
  const ResolvedConfig c = rc();
  std::uint64_t prev = 0;
  for (std::uint64_t x = 1; x < (1ull << 12); x *= 2) {
    const std::uint64_t len = grab_rounds(x, c);
    EXPECT_GE(len, prev);
    prev = len;
  }
}

TEST_P(ScheduleGrid, BoundsMonotoneInK) {
  const ResolvedConfig c = rc();
  std::uint64_t prev_c = 0, prev_d = 0, prev_t = 0;
  for (std::uint64_t k = 1; k < (1ull << 14); k *= 4) {
    const std::uint64_t bc = collection_rounds_bound(k, c);
    const std::uint64_t bd = dissemination_rounds_bound(k, c);
    const std::uint64_t bt = total_rounds_bound(k, c);
    EXPECT_GE(bc, prev_c);
    EXPECT_GE(bd, prev_d);
    EXPECT_GE(bt, prev_t);
    EXPECT_GE(bt, c.stage1_rounds + c.stage2_rounds + bc + bd);
    prev_c = bc;
    prev_d = bd;
    prev_t = bt;
  }
}

TEST_P(ScheduleGrid, PaperFormulasExact) {
  const ResolvedConfig c = rc();
  // OSPG(y) = 24y + 5D for every y in the cascade.
  for (const std::uint64_t y : {1ull, 10ull, 1000ull}) {
    EXPECT_EQ(ospg_window(y, c.know.d_hat).total_rounds(), 24 * y + 5 * c.know.d_hat);
  }
  // x0 = (D + log n) * log n.
  EXPECT_EQ(c.initial_estimate,
            static_cast<std::uint64_t>(c.know.d_hat + c.log_n) * c.log_n);
  // Dissemination phase fits a group injection.
  EXPECT_GE(c.dissem_phase_rounds, c.group_size);
  // Group size within the coded header's word budget.
  EXPECT_LE(c.group_size, 64u);
}

TEST_P(ScheduleGrid, StageOneCoversIdSpace) {
  const ResolvedConfig c = rc();
  // 2^probes >= n_hat so the binary search pins any id.
  EXPECT_GE(1ull << c.leader_probes, c.know.n_hat);
  EXPECT_LT(1ull << (c.leader_probes - 1), static_cast<std::uint64_t>(
                                               std::max(2u, c.know.n_hat)));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ScheduleGrid,
    ::testing::Values(KnowCase{2, 1, 1}, KnowCase{8, 3, 4}, KnowCase{64, 8, 6},
                      KnowCase{100, 99, 2}, KnowCase{256, 2, 255},
                      KnowCase{1000, 30, 40}, KnowCase{4096, 64, 12},
                      KnowCase{100000, 1000, 100}));

}  // namespace
}  // namespace radiocast::core
