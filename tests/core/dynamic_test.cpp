// Tests of the dynamic-arrival extension (paper's conclusion / future
// work): setup once, then repeated collect+disseminate epochs over an
// online packet stream.
#include "core/dynamic.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace radiocast::core {
namespace {

DynamicConfig make_cfg(const graph::Graph& g, std::uint32_t capacity = 0) {
  KBroadcastConfig kcfg;
  kcfg.know = radio::Knowledge::exact(g);
  DynamicConfig cfg;
  cfg.rc = resolve(kcfg);
  cfg.batch_capacity = capacity;
  return cfg;
}

/// Horizon long enough for setup + `epochs` worst-case epochs.
std::uint64_t horizon_for(const DynamicConfig& cfg, std::uint32_t epochs) {
  const std::uint64_t collect =
      collection_phase_rounds(cfg.rc.initial_estimate, cfg.rc) * 4;
  return cfg.rc.stage3_start() +
         static_cast<std::uint64_t>(epochs) *
             (collect + cfg.dissemination_window());
}

TEST(Dynamic, EmptyStreamRunsQuietly) {
  const graph::Graph g = graph::make_path(8);
  const DynamicConfig cfg = make_cfg(g);
  const DynamicRunResult r =
      run_dynamic_broadcast(g, cfg, {}, horizon_for(cfg, 2), 1);
  EXPECT_EQ(r.k, 0u);
  EXPECT_EQ(r.delivered_everywhere, 0u);
}

TEST(Dynamic, SingleEarlyPacketDeliversEverywhere) {
  Rng grng(2);
  const graph::Graph g = graph::make_random_geometric(24, 0.4, grng);
  const DynamicConfig cfg = make_cfg(g);
  std::vector<Arrival> arrivals(1);
  arrivals[0].round = 0;
  arrivals[0].node = 3;
  arrivals[0].packet.id = radio::make_packet_id(3, 0);
  arrivals[0].packet.payload = {1, 2, 3};
  const DynamicRunResult r =
      run_dynamic_broadcast(g, cfg, arrivals, horizon_for(cfg, 3), 3);
  EXPECT_EQ(r.delivered_everywhere, 1u);
  EXPECT_GT(r.latency_max, 0.0);
}

TEST(Dynamic, StreamOfArrivalsAllDelivered) {
  Rng grng(4);
  const graph::Graph g = graph::make_random_geometric(24, 0.4, grng);
  const DynamicConfig cfg = make_cfg(g);
  Rng arng(5);
  // Spread arrivals over roughly two epochs after setup.
  const std::uint64_t spread = horizon_for(cfg, 2);
  std::vector<Arrival> arrivals = make_arrivals(24, 30, spread, 8, arng);
  const std::uint64_t horizon = spread + horizon_for(cfg, 3);
  const DynamicRunResult r = run_dynamic_broadcast(g, cfg, arrivals, horizon, 6);
  EXPECT_EQ(r.delivered_everywhere, 30u);
  EXPECT_GT(r.latency_mean, 0.0);
  EXPECT_LE(r.latency_mean, r.latency_max);
}

TEST(Dynamic, LateArrivalsWaitForNextEpoch) {
  Rng grng(7);
  const graph::Graph g = graph::make_gnp_connected(20, 0.25, grng);
  const DynamicConfig cfg = make_cfg(g);
  // Packet arrives well after setup, mid-first-epoch.
  std::vector<Arrival> arrivals(1);
  arrivals[0].round = cfg.rc.stage3_start() + 10;
  arrivals[0].node = 5;
  arrivals[0].packet.id = radio::make_packet_id(5, 0);
  arrivals[0].packet.payload = {9};
  const DynamicRunResult r =
      run_dynamic_broadcast(g, cfg, arrivals, horizon_for(cfg, 4), 8);
  EXPECT_EQ(r.delivered_everywhere, 1u);
}

TEST(Dynamic, CapacityOverflowCarriesToNextEpoch) {
  Rng grng(9);
  const graph::Graph g = graph::make_gnp_connected(20, 0.25, grng);
  // Tiny capacity: one group per epoch.
  DynamicConfig cfg = make_cfg(g, /*capacity=*/4);
  Rng arng(10);
  // 12 packets arriving immediately: needs ~3 dissemination epochs.
  std::vector<Arrival> arrivals = make_arrivals(20, 12, 1, 8, arng);
  const DynamicRunResult r =
      run_dynamic_broadcast(g, cfg, arrivals, horizon_for(cfg, 8), 11);
  EXPECT_EQ(r.delivered_everywhere, 12u);
}

TEST(Dynamic, NodesAgreeOnLeader) {
  Rng grng(12);
  const graph::Graph g = graph::make_random_geometric(16, 0.5, grng);
  const DynamicConfig cfg = make_cfg(g);
  radio::Network net(g);
  Rng master(13);
  std::vector<DynamicBroadcastNode*> nodes;
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    auto node = std::make_unique<DynamicBroadcastNode>(cfg, v, master.split());
    nodes.push_back(node.get());
    net.set_protocol(v, std::move(node));
    net.wake_at_start(v);
  }
  for (std::uint64_t r = 0; r <= cfg.rc.stage1_rounds; ++r) net.step();
  int leaders = 0;
  for (auto* node : nodes) {
    if (node->is_leader()) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
  // All nodes participate, so the max id must win.
  EXPECT_TRUE(nodes.back()->is_leader());
}

TEST(Dynamic, EpochsAdvance) {
  Rng grng(14);
  const graph::Graph g = graph::make_gnp_connected(16, 0.3, grng);
  const DynamicConfig cfg = make_cfg(g);
  radio::Network net(g);
  Rng master(15);
  std::vector<DynamicBroadcastNode*> nodes;
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    auto node = std::make_unique<DynamicBroadcastNode>(cfg, v, master.split());
    nodes.push_back(node.get());
    net.set_protocol(v, std::move(node));
    net.wake_at_start(v);
  }
  const std::uint64_t horizon = horizon_for(cfg, 3);
  for (std::uint64_t r = 0; r < horizon; ++r) net.step();
  // Every node moved past at least one full epoch, and epoch counters
  // stay tightly synchronized across nodes.
  std::uint32_t min_epochs = 1000, max_epochs = 0;
  for (auto* node : nodes) {
    min_epochs = std::min(min_epochs, node->epochs_completed());
    max_epochs = std::max(max_epochs, node->epochs_completed());
  }
  EXPECT_GE(min_epochs, 1u);
  EXPECT_EQ(min_epochs, max_epochs);
}

}  // namespace
}  // namespace radiocast::core
