// Stage 4 tests: wire-image round trip, FORWARD scheduling, and full
// dissemination runs on a precomputed BFS layering (isolating Stage 4).
#include "core/dissemination.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "core/runner.hpp"
#include "core/schedule.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "radio/network.hpp"

namespace radiocast::core {
namespace {

TEST(WireImage, RoundTrip) {
  radio::Packet p;
  p.id = radio::make_packet_id(0x1234, 0x99);
  p.payload = {1, 2, 3, 4, 5};
  const gf2::Payload wire = packet_wire_image(p);
  EXPECT_EQ(wire.size(), 8u + 5u);
  const radio::Packet q = packet_from_wire_image(wire);
  EXPECT_EQ(q.id, p.id);
  EXPECT_EQ(q.payload, p.payload);
}

TEST(WireImage, EmptyPayload) {
  radio::Packet p;
  p.id = 42;
  const radio::Packet q = packet_from_wire_image(packet_wire_image(p));
  EXPECT_EQ(q.id, 42u);
  EXPECT_TRUE(q.payload.empty());
}

/// Standalone Stage-4 protocol with distances supplied centrally.
class DissemOnlyNode final : public radio::NodeProtocol {
 public:
  DissemOnlyNode(const DisseminationState::Config& cfg, radio::NodeId self,
                 bool is_root, std::optional<std::uint32_t> dist, Rng rng)
      : rng_(rng), state_(cfg, self, is_root, dist, &rng_) {}

  std::optional<radio::MessageBody> on_transmit(radio::Round round) override {
    return state_.on_transmit(round);
  }
  void on_receive(radio::Round round, const radio::Message& msg) override {
    state_.on_receive(round, msg);
  }
  bool done() const override { return state_.complete(); }

  DisseminationState& state() { return state_; }

 private:
  Rng rng_;
  DisseminationState state_;
};

std::vector<radio::Packet> make_packets(std::uint32_t k, Rng& rng) {
  std::vector<radio::Packet> packets;
  for (std::uint32_t i = 0; i < k; ++i) {
    radio::Packet p;
    p.id = radio::make_packet_id(1, i);
    p.payload.resize(16);
    for (auto& b : p.payload) b = static_cast<std::uint8_t>(rng() & 0xff);
    packets.push_back(std::move(p));
  }
  return packets;
}

struct DissemOutcome {
  bool all_complete = false;
  bool payloads_exact = false;
  std::uint64_t rounds = 0;
};

DissemOutcome run_dissem(const graph::Graph& g, radio::NodeId root, std::uint32_t k,
                         std::uint64_t seed, bool coded = true) {
  KBroadcastConfig kcfg;
  kcfg.know = radio::Knowledge::exact(g);
  kcfg.coded = coded;
  if (!coded) kcfg.group_size = 1;
  const ResolvedConfig rc = resolve(kcfg);
  DisseminationState::Config cfg{rc};

  Rng prng(seed * 77 + 1);
  std::vector<radio::Packet> packets = make_packets(k, prng);

  const graph::BfsResult tree = graph::bfs(g, root);
  radio::Network net(g);
  Rng master(seed);
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    std::optional<std::uint32_t> dist;
    if (tree.dist[v] != graph::kUnreachable) dist = tree.dist[v];
    net.set_protocol(v, std::make_unique<DissemOnlyNode>(cfg, v, v == root, dist,
                                                         master.split()));
    net.wake_at_start(v);
  }
  static_cast<DissemOnlyNode&>(net.protocol(root)).state().set_root_packets(packets);

  const std::uint64_t bound = 4 * dissemination_rounds_bound(k, rc) + 1000;
  const bool done = net.run_until_done(bound);

  DissemOutcome out;
  out.all_complete = done;
  out.rounds = net.current_round();
  std::sort(packets.begin(), packets.end(),
            [](const radio::Packet& a, const radio::Packet& b) { return a.id < b.id; });
  out.payloads_exact = true;
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    auto& node = static_cast<DissemOnlyNode&>(net.protocol(v));
    std::vector<radio::Packet> got =
        v == root ? packets : node.state().packets();
    if (got != packets) out.payloads_exact = false;
  }
  return out;
}

TEST(Dissemination, SingleGroupOnPath) {
  const graph::Graph g = graph::make_path(12);
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const DissemOutcome out = run_dissem(g, 0, 4, seed);
    EXPECT_TRUE(out.all_complete) << seed;
    EXPECT_TRUE(out.payloads_exact) << seed;
  }
}

TEST(Dissemination, ManyGroupsOnPath) {
  const graph::Graph g = graph::make_path(10);
  const DissemOutcome out = run_dissem(g, 0, 40, 1);
  EXPECT_TRUE(out.all_complete);
  EXPECT_TRUE(out.payloads_exact);
}

TEST(Dissemination, GeometricGraphManyGroups) {
  Rng grng(2);
  const graph::Graph g = graph::make_random_geometric(50, 0.3, grng);
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const DissemOutcome out = run_dissem(g, 0, 60, seed);
    EXPECT_TRUE(out.all_complete) << seed;
    EXPECT_TRUE(out.payloads_exact) << seed;
  }
}

TEST(Dissemination, StarHighDegree) {
  const graph::Graph g = graph::make_star(40);
  const DissemOutcome out = run_dissem(g, 0, 24, 3);
  EXPECT_TRUE(out.all_complete);
  EXPECT_TRUE(out.payloads_exact);
}

TEST(Dissemination, UncodedModeAlsoDelivers) {
  const graph::Graph g = graph::make_path(8);
  const DissemOutcome out = run_dissem(g, 0, 10, 4, /*coded=*/false);
  EXPECT_TRUE(out.all_complete);
  EXPECT_TRUE(out.payloads_exact);
}

TEST(Dissemination, CodedBeatsUncodedInRounds) {
  // The headline mechanism: coded groups move ⌈log n⌉ packets per 3 phases;
  // uncoded pipelining moves 1. At equal k the coded run must be
  // substantially faster.
  Rng grng(5);
  const graph::Graph g = graph::make_gnp_connected(48, 0.12, grng);
  const std::uint32_t k = 48;
  std::uint64_t coded = 0, uncoded = 0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    coded += run_dissem(g, 0, k, seed, true).rounds;
    uncoded += run_dissem(g, 0, k, seed, false).rounds;
  }
  EXPECT_LT(coded * 2, uncoded);
}

TEST(Dissemination, RootIsCompleteImmediately) {
  const graph::Graph g = graph::make_path(4);
  KBroadcastConfig kcfg;
  kcfg.know = radio::Knowledge::exact(g);
  const ResolvedConfig rc = resolve(kcfg);
  Rng rng(6);
  DisseminationState root(DisseminationState::Config{rc}, 0, true, 0u, &rng);
  EXPECT_FALSE(root.complete());  // packets not yet installed
  Rng prng(7);
  root.set_root_packets(make_packets(5, prng));
  EXPECT_TRUE(root.complete());
  EXPECT_EQ(root.group_count(), ceil_div(5, rc.group_size) == 0
                                    ? 0u
                                    : static_cast<std::uint32_t>(
                                          ceil_div(5, rc.group_size)));
}

TEST(Dissemination, NodeWithoutDistanceNeverTransmitsButDecodes) {
  const graph::Graph g = graph::make_path(4);
  KBroadcastConfig kcfg;
  kcfg.know = radio::Knowledge::exact(g);
  const ResolvedConfig rc = resolve(kcfg);
  Rng rng(8);
  DisseminationState node(DisseminationState::Config{rc}, 2, false, std::nullopt,
                          &rng);
  for (std::uint64_t r = 0; r < 500; ++r) {
    EXPECT_FALSE(node.on_transmit(r).has_value());
  }
  // It still decodes plain rows it happens to hear.
  radio::PlainPacketMsg m;
  m.packet.id = radio::make_packet_id(0, 0);
  m.packet.payload = {9, 9};
  m.group_id = 0;
  m.group_count = 1;
  m.index_in_group = 0;
  m.group_size = 1;
  node.on_receive(3, radio::Message{1, m});
  EXPECT_TRUE(node.complete());
  ASSERT_EQ(node.packets().size(), 1u);
  EXPECT_EQ(node.packets()[0].payload, (gf2::Payload{9, 9}));
}

TEST(Dissemination, RootInjectsGroupsOnSpacingGrid) {
  const graph::Graph g = graph::make_path(6);
  KBroadcastConfig kcfg;
  kcfg.know = radio::Knowledge::exact(g);
  const ResolvedConfig rc = resolve(kcfg);
  Rng rng(9), prng(10);
  DisseminationState root(DisseminationState::Config{rc}, 0, true, 0u, &rng);
  const std::uint32_t k = 3 * rc.group_size;  // exactly 3 groups
  root.set_root_packets(make_packets(k, prng));
  ASSERT_EQ(root.group_count(), 3u);

  const std::uint64_t phases_to_scan = rc.group_spacing * 3 + 2;
  for (std::uint64_t ph = 0; ph < phases_to_scan; ++ph) {
    std::uint32_t sent = 0;
    for (std::uint64_t off = 0; off < rc.dissem_phase_rounds; ++off) {
      const auto out = root.on_transmit(ph * rc.dissem_phase_rounds + off);
      if (!out.has_value()) continue;
      ++sent;
      const auto* plain = std::get_if<radio::PlainPacketMsg>(&*out);
      ASSERT_NE(plain, nullptr);
      EXPECT_EQ(plain->group_id, ph / rc.group_spacing);
    }
    if (ph % rc.group_spacing == 0 && ph / rc.group_spacing < 3) {
      EXPECT_EQ(sent, rc.group_size);
    } else {
      EXPECT_EQ(sent, 0u);
    }
  }
}

}  // namespace
}  // namespace radiocast::core
