// End-to-end integration tests of the full four-stage protocol, driven
// exclusively through the public runner API — the same path the examples
// and benches use.
#include <gtest/gtest.h>

#include "baselines/uncoded_pipeline.hpp"
#include "common/rng.hpp"
#include "core/runner.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace radiocast::core {
namespace {

KBroadcastConfig exact_cfg(const graph::Graph& g) {
  KBroadcastConfig cfg;
  cfg.know = radio::Knowledge::exact(g);
  return cfg;
}

TEST(EndToEnd, ZeroPacketsIsVacuouslyDone) {
  const graph::Graph g = graph::make_path(8);
  Rng rng(1);
  const Placement p = make_placement(8, 0, PlacementMode::kRandom, 16, rng);
  const RunResult r = run_kbroadcast(g, exact_cfg(g), p, 1);
  EXPECT_TRUE(r.delivered_all);
  EXPECT_EQ(r.total_rounds, 0u);
  EXPECT_EQ(r.k, 0u);
}

TEST(EndToEnd, SinglePacketSingleSource) {
  Rng rng(2);
  const graph::Graph g = graph::make_path(12);
  const Placement p = make_placement(12, 1, PlacementMode::kSingleSource, 16, rng);
  const RunResult r = run_kbroadcast(g, exact_cfg(g), p, 2);
  EXPECT_TRUE(r.delivered_all);
  EXPECT_FALSE(r.timed_out);
  EXPECT_TRUE(r.leader_ok);
  EXPECT_TRUE(r.bfs_ok);
}

TEST(EndToEnd, ModeratePacketsRandomPlacement) {
  Rng grng(3);
  const graph::Graph g = graph::make_random_geometric(40, 0.3, grng);
  Rng rng(4);
  const Placement p = make_placement(40, 30, PlacementMode::kRandom, 16, rng);
  const RunResult r = run_kbroadcast(g, exact_cfg(g), p, 5);
  EXPECT_TRUE(r.delivered_all);
  EXPECT_TRUE(r.leader_ok);
  EXPECT_TRUE(r.bfs_ok);
  EXPECT_EQ(r.k, 30u);
  EXPECT_GT(r.stage4_rounds, 0u);
}

TEST(EndToEnd, StageRoundsSumToTotal) {
  Rng grng(6);
  const graph::Graph g = graph::make_gnp_connected(32, 0.15, grng);
  Rng rng(7);
  const Placement p = make_placement(32, 20, PlacementMode::kSpreadEven, 16, rng);
  const RunResult r = run_kbroadcast(g, exact_cfg(g), p, 8);
  ASSERT_TRUE(r.delivered_all);
  EXPECT_EQ(r.stage1_rounds + r.stage2_rounds + r.stage3_rounds + r.stage4_rounds,
            r.total_rounds);
}

class EndToEndFamilies : public ::testing::TestWithParam<std::string> {};

TEST_P(EndToEndFamilies, DeliversEverythingEverywhere) {
  Rng grng(20);
  const graph::Graph g = graph::make_named(GetParam(), 36, grng);
  Rng rng(21);
  const Placement p =
      make_placement(g.num_nodes(), 25, PlacementMode::kRandom, 12, rng);
  const RunResult r = run_kbroadcast(g, exact_cfg(g), p, 22);
  EXPECT_TRUE(r.delivered_all) << GetParam();
  EXPECT_TRUE(r.leader_ok) << GetParam();
  EXPECT_FALSE(r.timed_out) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, EndToEndFamilies,
                         ::testing::ValuesIn(graph::named_families()));

class EndToEndSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EndToEndSeeds, GeometricGraphIsReliableAcrossSeeds) {
  Rng grng(GetParam());
  const graph::Graph g = graph::make_random_geometric(48, 0.28, grng);
  Rng rng(GetParam() + 1000);
  const Placement p =
      make_placement(g.num_nodes(), 40, PlacementMode::kRandom, 16, rng);
  const RunResult r = run_kbroadcast(g, exact_cfg(g), p, GetParam() + 2000);
  EXPECT_TRUE(r.delivered_all);
  EXPECT_TRUE(r.leader_ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEndSeeds, ::testing::Range<std::uint64_t>(0, 8));

TEST(EndToEnd, DeterministicGivenSeeds) {
  Rng g1(30), g2(30);
  const graph::Graph a = graph::make_gnp_connected(24, 0.2, g1);
  const graph::Graph b = graph::make_gnp_connected(24, 0.2, g2);
  Rng p1(31), p2(31);
  const Placement pa = make_placement(24, 15, PlacementMode::kRandom, 8, p1);
  const Placement pb = make_placement(24, 15, PlacementMode::kRandom, 8, p2);
  const RunResult ra = run_kbroadcast(a, exact_cfg(a), pa, 32);
  const RunResult rb = run_kbroadcast(b, exact_cfg(b), pb, 32);
  EXPECT_EQ(ra.total_rounds, rb.total_rounds);
  EXPECT_EQ(ra.counters.transmissions, rb.counters.transmissions);
  EXPECT_EQ(ra.counters.deliveries, rb.counters.deliveries);
}

TEST(EndToEnd, PaddedKnowledgeStillDelivers) {
  // The paper only assumes polynomial bounds on n, Δ and a linear bound on
  // D; over-estimation must cost rounds, not correctness.
  Rng grng(40);
  const graph::Graph g = graph::make_random_geometric(30, 0.35, grng);
  Rng rng(41);
  const Placement p = make_placement(30, 20, PlacementMode::kRandom, 16, rng);
  KBroadcastConfig cfg;
  cfg.know = radio::Knowledge::padded(g, 1.5, 2.0);
  const RunResult r = run_kbroadcast(g, cfg, p, 42);
  EXPECT_TRUE(r.delivered_all);
  // Exact knowledge is cheaper.
  const RunResult exact = run_kbroadcast(g, exact_cfg(g), p, 42);
  EXPECT_GT(r.total_rounds, exact.total_rounds);
}

TEST(EndToEnd, LargeKForcesEstimateDoubling) {
  // GRAB's final MSPG over-delivers relative to the estimate, so k must be
  // far past x0 before the first phase leaves packets uncollected.
  const graph::Graph g = graph::make_star(24);
  const KBroadcastConfig cfg = exact_cfg(g);
  const ResolvedConfig rc = resolve(cfg);
  const auto k = static_cast<std::uint32_t>(rc.initial_estimate * 16);
  Rng rng(50);
  const Placement p = make_placement(24, k, PlacementMode::kRandom, 8, rng);
  const RunResult r = run_kbroadcast(g, cfg, p, 51);
  EXPECT_TRUE(r.delivered_all);
  EXPECT_GE(r.collection_phases, 2u);
  EXPECT_GE(r.final_estimate, rc.initial_estimate * 2);
}

TEST(EndToEnd, AmortizedCostShrinksWithK) {
  // Theorem 2: per-packet cost approaches O(log Δ) as k grows past the
  // additive term. Compare amortized cost at small vs large k.
  Rng grng(60);
  const graph::Graph g = graph::make_gnp_connected(32, 0.15, grng);
  Rng r1(61), r2(62);
  const Placement small = make_placement(32, 4, PlacementMode::kRandom, 8, r1);
  const Placement large = make_placement(32, 256, PlacementMode::kRandom, 8, r2);
  const RunResult rs = run_kbroadcast(g, exact_cfg(g), small, 63);
  const RunResult rl = run_kbroadcast(g, exact_cfg(g), large, 64);
  ASSERT_TRUE(rs.delivered_all);
  ASSERT_TRUE(rl.delivered_all);
  EXPECT_LT(rl.amortized_rounds_per_packet(),
            rs.amortized_rounds_per_packet() / 4.0);
}

TEST(Placement, ModesPlaceAllPackets) {
  Rng rng(70);
  for (const PlacementMode mode :
       {PlacementMode::kRandom, PlacementMode::kSingleSource,
        PlacementMode::kSpreadEven}) {
    const Placement p = make_placement(10, 25, mode, 4, rng);
    EXPECT_EQ(p.size(), 10u);
    const auto all = placement_packets(p);
    EXPECT_EQ(all.size(), 25u);
    // Ids unique and sorted.
    for (std::size_t i = 1; i < all.size(); ++i) EXPECT_LT(all[i - 1].id, all[i].id);
    // Origin encoded in id matches the holder.
    for (std::uint32_t v = 0; v < 10; ++v) {
      for (const auto& pkt : p[v]) EXPECT_EQ(radio::packet_origin(pkt.id), v);
    }
  }
}

TEST(Placement, SingleSourcePutsAllInOnePlace) {
  Rng rng(71);
  const Placement p = make_placement(12, 9, PlacementMode::kSingleSource, 4, rng);
  int nonempty = 0;
  for (const auto& node : p) {
    if (!node.empty()) {
      ++nonempty;
      EXPECT_EQ(node.size(), 9u);
    }
  }
  EXPECT_EQ(nonempty, 1);
}

TEST(Placement, SpreadEvenBalances) {
  Rng rng(72);
  const Placement p = make_placement(8, 16, PlacementMode::kSpreadEven, 4, rng);
  for (const auto& node : p) EXPECT_EQ(node.size(), 2u);
}

}  // namespace
}  // namespace radiocast::core
