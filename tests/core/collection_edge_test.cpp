// Additional Stage-3 edge cases: MSPG copy draws, window boundaries,
// conflict accounting, stray-message robustness.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/collection.hpp"
#include "core/schedule.hpp"
#include "graph/generators.hpp"

namespace radiocast::core {
namespace {

CollectionState::Config cfg_for(const graph::Graph& g, std::uint32_t grab_c = 3) {
  KBroadcastConfig kcfg;
  kcfg.know = radio::Knowledge::exact(g);
  kcfg.grab_c = grab_c;
  return CollectionState::Config{resolve(kcfg)};
}

radio::Packet pkt(radio::NodeId origin, std::uint32_t seq) {
  radio::Packet p;
  p.id = radio::make_packet_id(origin, seq);
  p.payload = {static_cast<std::uint8_t>(seq)};
  return p;
}

TEST(CollectionEdge, SourceStartsEveryUnackedPacketInOspg) {
  // Over the first OSPG window a source with m packets must transmit at
  // least one start (slots are drawn for every packet; collisions within
  // the node can only merge them).
  const graph::Graph g = graph::make_path(3);
  const auto cfg = cfg_for(g);
  Rng rng(1);
  CollectionState source(cfg, 2, false, radio::NodeId{1}, {pkt(2, 0), pkt(2, 1)},
                         &rng);
  const GatherWindow w0 = grab_windows(cfg.rc.initial_estimate, cfg.rc)[0];
  int starts = 0;
  for (std::uint64_t r = 0; r < w0.up_rounds; ++r) {
    const auto out = source.on_transmit(r);
    if (out.has_value() && std::holds_alternative<radio::DataMsg>(*out)) ++starts;
  }
  EXPECT_GE(starts, 1);
  EXPECT_LE(starts, 2);
}

TEST(CollectionEdge, DataMsgOutsideUpWindowIgnored) {
  const graph::Graph g = graph::make_path(3);
  const auto cfg = cfg_for(g);
  Rng rng(2);
  CollectionState relay(cfg, 1, false, radio::NodeId{0}, {}, &rng);
  const GatherWindow w0 = grab_windows(cfg.rc.initial_estimate, cfg.rc)[0];
  // Deliver a data message during the ACK window: must not schedule a
  // relay forward.
  radio::Message msg{2, radio::DataMsg{pkt(2, 0), 1}};
  relay.on_receive(w0.up_rounds + 5, msg);
  for (std::uint64_t r = w0.up_rounds + 5; r < w0.up_rounds + 10; ++r) {
    const auto out = relay.on_transmit(r);
    EXPECT_TRUE(!out.has_value() || !std::holds_alternative<radio::DataMsg>(*out));
  }
}

TEST(CollectionEdge, RelayDropsPacketAtUpWindowBoundary) {
  const graph::Graph g = graph::make_path(3);
  const auto cfg = cfg_for(g);
  Rng rng(3);
  CollectionState relay(cfg, 1, false, radio::NodeId{0}, {}, &rng);
  const GatherWindow w0 = grab_windows(cfg.rc.initial_estimate, cfg.rc)[0];
  // Received on the last up-window round: forwarding would land outside,
  // so the copy dies (the paper's no-recovery rule).
  radio::Message msg{2, radio::DataMsg{pkt(2, 0), 1}};
  relay.on_receive(w0.up_rounds - 1, msg);
  const auto out = relay.on_transmit(w0.up_rounds);
  EXPECT_TRUE(!out.has_value() || !std::holds_alternative<radio::DataMsg>(*out));
}

TEST(CollectionEdge, AckForUnknownPacketIsIgnored) {
  const graph::Graph g = graph::make_path(3);
  const auto cfg = cfg_for(g);
  Rng rng(4);
  CollectionState relay(cfg, 1, false, radio::NodeId{0}, {}, &rng);
  const GatherWindow w0 = grab_windows(cfg.rc.initial_estimate, cfg.rc)[0];
  radio::Message ack{0, radio::AckMsg{radio::make_packet_id(9, 9), 1}};
  relay.on_receive(w0.up_rounds + 1, ack);  // no child recorded for it
  for (std::uint64_t r = w0.up_rounds + 1; r < w0.up_rounds + 6; ++r) {
    EXPECT_FALSE(relay.on_transmit(r).has_value());
  }
}

TEST(CollectionEdge, DuplicateDeliveryReAcked) {
  // The root re-acknowledges a packet it already has (the origin may have
  // missed the first ack).
  const graph::Graph g = graph::make_path(3);
  const auto cfg = cfg_for(g);
  Rng rng(5);
  CollectionState root(cfg, 0, true, std::nullopt, {}, &rng);
  const radio::Packet p = pkt(2, 0);
  root.on_receive(3, radio::Message{1, radio::DataMsg{p, 0}});
  root.on_receive(5, radio::Message{1, radio::DataMsg{p, 0}});
  EXPECT_EQ(root.collected().size(), 1u);  // deduplicated
  const GatherWindow w0 = grab_windows(cfg.rc.initial_estimate, cfg.rc)[0];
  int acks = 0;
  for (std::uint64_t r = w0.up_rounds; r < w0.total_rounds(); ++r) {
    const auto out = root.on_transmit(r);
    if (out.has_value() && std::holds_alternative<radio::AckMsg>(*out)) ++acks;
  }
  EXPECT_EQ(acks, 2);  // one ack per received copy
}

TEST(CollectionEdge, AcksSpacedThreeApart) {
  const graph::Graph g = graph::make_path(3);
  const auto cfg = cfg_for(g);
  Rng rng(6);
  CollectionState root(cfg, 0, true, std::nullopt, {}, &rng);
  // Three distinct packets delivered in consecutive rounds.
  for (std::uint32_t i = 0; i < 3; ++i) {
    root.on_receive(3 + i, radio::Message{1, radio::DataMsg{pkt(2, i), 0}});
  }
  const GatherWindow w0 = grab_windows(cfg.rc.initial_estimate, cfg.rc)[0];
  std::vector<std::uint64_t> ack_rounds;
  for (std::uint64_t r = w0.up_rounds; r < w0.total_rounds(); ++r) {
    const auto out = root.on_transmit(r);
    if (out.has_value() && std::holds_alternative<radio::AckMsg>(*out)) {
      ack_rounds.push_back(r);
    }
  }
  ASSERT_EQ(ack_rounds.size(), 3u);
  EXPECT_EQ(ack_rounds[1] - ack_rounds[0], 3u);
  EXPECT_EQ(ack_rounds[2] - ack_rounds[1], 3u);
}

TEST(CollectionEdge, MspgDrawsMultipleCopies) {
  // In the MSPG window a source's packet gets c·log n slot draws; over the
  // window it should be transmitted several times (distinct slots whp).
  const graph::Graph g = graph::make_star(8);
  const auto cfg = cfg_for(g);
  Rng rng(7);
  CollectionState source(cfg, 2, false, radio::NodeId{0}, {pkt(2, 0)}, &rng);
  const auto windows = grab_windows(cfg.rc.initial_estimate, cfg.rc);
  const GatherWindow& mspg = windows.back();
  ASSERT_GT(mspg.copies, 1u);
  int copies_sent = 0;
  for (std::uint64_t r = mspg.start; r < mspg.start + mspg.up_rounds; ++r) {
    const auto out = source.on_transmit(r);
    if (out.has_value() && std::holds_alternative<radio::DataMsg>(*out)) {
      ++copies_sent;
    }
  }
  EXPECT_GE(copies_sent, static_cast<int>(mspg.copies) / 2);
  EXPECT_LE(copies_sent, static_cast<int>(mspg.copies));
}

TEST(CollectionEdge, NodeWithoutParentNeverSendsData) {
  const graph::Graph g = graph::make_path(3);
  const auto cfg = cfg_for(g);
  Rng rng(8);
  CollectionState orphan(cfg, 2, false, std::nullopt, {pkt(2, 0)}, &rng);
  const std::uint64_t grab = grab_rounds(cfg.rc.initial_estimate, cfg.rc);
  for (std::uint64_t r = 0; r < grab; ++r) {
    const auto out = orphan.on_transmit(r);
    EXPECT_TRUE(!out.has_value() || !std::holds_alternative<radio::DataMsg>(*out));
  }
  // But it still alarms: its packet is unacked.
  bool alarmed = false;
  for (std::uint64_t r = grab; r < grab + cfg.rc.alarm_rounds; ++r) {
    const auto out = orphan.on_transmit(r);
    if (out.has_value() && std::holds_alternative<radio::AlarmMsg>(*out)) {
      alarmed = true;
    }
  }
  EXPECT_TRUE(alarmed);
}

TEST(CollectionEdge, UnackedPacketsAccessor) {
  const graph::Graph g = graph::make_path(3);
  const auto cfg = cfg_for(g);
  Rng rng(9);
  CollectionState source(cfg, 2, false, radio::NodeId{1}, {pkt(2, 0), pkt(2, 1)},
                         &rng);
  EXPECT_EQ(source.unacked_packets().size(), 2u);
  const GatherWindow w0 = grab_windows(cfg.rc.initial_estimate, cfg.rc)[0];
  source.on_receive(w0.up_rounds + 1,
                    radio::Message{1, radio::AckMsg{pkt(2, 0).id, 2}});
  const auto unacked = source.unacked_packets();
  ASSERT_EQ(unacked.size(), 1u);
  EXPECT_EQ(unacked[0].id, pkt(2, 1).id);
}

TEST(CollectionEdge, GrabConstantAffectsCascadeFloor) {
  const graph::Graph g = graph::make_path(8);
  const auto cfg1 = cfg_for(g, 1);
  const auto cfg4 = cfg_for(g, 4);
  EXPECT_EQ(cfg1.rc.c_log_n, cfg1.rc.log_n);
  EXPECT_EQ(cfg4.rc.c_log_n, 4ull * cfg4.rc.log_n);
  EXPECT_LT(grab_rounds(cfg1.rc.initial_estimate, cfg1.rc),
            grab_rounds(cfg4.rc.initial_estimate, cfg4.rc));
}

}  // namespace
}  // namespace radiocast::core
