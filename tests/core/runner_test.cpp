// Runner/placement edge cases and parameterized end-to-end grids over
// (placement mode × k × payload size).
#include "core/runner.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace radiocast::core {
namespace {

KBroadcastConfig exact_cfg(const graph::Graph& g) {
  KBroadcastConfig cfg;
  cfg.know = radio::Knowledge::exact(g);
  return cfg;
}

TEST(Placement, MorePacketsThanNodes) {
  Rng rng(1);
  const Placement p = make_placement(4, 50, PlacementMode::kSpreadEven, 4, rng);
  const auto all = placement_packets(p);
  EXPECT_EQ(all.size(), 50u);
  for (const auto& node : p) {
    EXPECT_GE(node.size(), 12u);
    EXPECT_LE(node.size(), 13u);
  }
}

TEST(Placement, SequenceNumbersArePerOrigin) {
  Rng rng(2);
  const Placement p = make_placement(5, 20, PlacementMode::kRandom, 4, rng);
  for (std::uint32_t v = 0; v < 5; ++v) {
    for (std::size_t i = 0; i < p[v].size(); ++i) {
      EXPECT_EQ(radio::packet_seq(p[v][i].id), i);
    }
  }
}

TEST(Placement, PayloadSizeRespected) {
  Rng rng(3);
  for (const std::uint32_t bytes : {0u, 1u, 16u, 100u}) {
    const Placement p = make_placement(6, 8, PlacementMode::kRandom, bytes, rng);
    for (const auto& node : p) {
      for (const auto& pkt : node) EXPECT_EQ(pkt.payload.size(), bytes);
    }
  }
}

TEST(Placement, DeterministicGivenRng) {
  Rng a(4), b(4);
  const Placement pa = make_placement(8, 12, PlacementMode::kRandom, 8, a);
  const Placement pb = make_placement(8, 12, PlacementMode::kRandom, 8, b);
  EXPECT_EQ(pa, pb);
}

TEST(Runner, SingleNodeNetworkTrivial) {
  graph::Graph g(1);
  g.finalize();
  Rng rng(5);
  Placement p(1);
  radio::Packet pkt;
  pkt.id = radio::make_packet_id(0, 0);
  pkt.payload = {1};
  p[0].push_back(pkt);
  KBroadcastConfig cfg;
  cfg.know.n_hat = 2;
  cfg.know.delta_hat = 1;
  cfg.know.d_hat = 1;
  const RunResult r = run_kbroadcast(g, cfg, p, 6);
  EXPECT_TRUE(r.delivered_all);
  EXPECT_EQ(r.nodes_complete, 1u);
}

TEST(Runner, TwoNodeNetwork) {
  const graph::Graph g = graph::make_path(2);
  Rng rng(7);
  const Placement p = make_placement(2, 3, PlacementMode::kRandom, 8, rng);
  const RunResult r = run_kbroadcast(g, exact_cfg(g), p, 8);
  EXPECT_TRUE(r.delivered_all);
  EXPECT_TRUE(r.leader_ok);
}

TEST(Runner, ZeroPayloadPacketsStillIdentifiable) {
  // Payloads of size 0: the coded wire image is just the 8-byte id; every
  // node must still learn which packets exist.
  Rng grng(9);
  const graph::Graph g = graph::make_gnp_connected(16, 0.3, grng);
  Rng rng(10);
  const Placement p = make_placement(16, 10, PlacementMode::kRandom, 0, rng);
  const RunResult r = run_kbroadcast(g, exact_cfg(g), p, 11);
  EXPECT_TRUE(r.delivered_all);
}

TEST(Runner, LargePayloads) {
  Rng grng(12);
  const graph::Graph g = graph::make_gnp_connected(12, 0.4, grng);
  Rng rng(13);
  const Placement p = make_placement(12, 6, PlacementMode::kRandom, 512, rng);
  const RunResult r = run_kbroadcast(g, exact_cfg(g), p, 14);
  EXPECT_TRUE(r.delivered_all);
  // Bit accounting scales with payload size.
  EXPECT_GT(r.counters.bits_transmitted, 6u * 512u * 8u);
}

TEST(Runner, MaxRoundsTooSmallReportsTimeout) {
  Rng grng(15);
  const graph::Graph g = graph::make_gnp_connected(16, 0.3, grng);
  Rng rng(16);
  const Placement p = make_placement(16, 10, PlacementMode::kRandom, 8, rng);
  const RunResult r = run_kbroadcast(g, exact_cfg(g), p, 17, /*max_rounds=*/50);
  EXPECT_TRUE(r.timed_out);
  EXPECT_FALSE(r.delivered_all);
  EXPECT_EQ(r.total_rounds, 50u);
}

TEST(Runner, AmortizedHelper) {
  RunResult r;
  r.k = 0;
  r.total_rounds = 100;
  EXPECT_EQ(r.amortized_rounds_per_packet(), 0.0);
  r.k = 4;
  EXPECT_DOUBLE_EQ(r.amortized_rounds_per_packet(), 25.0);
}

// Grid: every placement mode delivers at several k, including k around the
// group-size boundary (g = 1 vs g > 1) and k = 1.
class ModeKGrid
    : public ::testing::TestWithParam<std::tuple<PlacementMode, std::uint32_t>> {};

TEST_P(ModeKGrid, Delivers) {
  const auto [mode, k] = GetParam();
  Rng grng(20);
  const graph::Graph g = graph::make_random_geometric(28, 0.35, grng);
  Rng rng(21 + k);
  const Placement p = make_placement(g.num_nodes(), k, mode, 8, rng);
  const RunResult r = run_kbroadcast(g, exact_cfg(g), p, 22 + k);
  EXPECT_TRUE(r.delivered_all);
  EXPECT_FALSE(r.timed_out);
  EXPECT_EQ(r.k, k);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModeKGrid,
    ::testing::Combine(::testing::Values(PlacementMode::kRandom,
                                         PlacementMode::kSingleSource,
                                         PlacementMode::kSpreadEven),
                       ::testing::Values<std::uint32_t>(1, 2, 5, 6, 11, 37)));

}  // namespace
}  // namespace radiocast::core
