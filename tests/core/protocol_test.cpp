// Unit-level tests of the composed KBroadcastNode state machine: stage
// sequencing, introspection, and delivered_packets at each point of the
// schedule. (End-to-end behaviour is covered by endtoend_test.cpp.)
#include "core/protocol.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "radio/network.hpp"

namespace radiocast::core {
namespace {

ResolvedConfig small_rc(const graph::Graph& g) {
  KBroadcastConfig cfg;
  cfg.know = radio::Knowledge::exact(g);
  return resolve(cfg);
}

TEST(KBroadcastNode, StartsAsParticipantIffHoldingPackets) {
  const graph::Graph g = graph::make_path(4);
  const ResolvedConfig rc = small_rc(g);
  radio::Packet p;
  p.id = radio::make_packet_id(1, 0);
  Rng r1(1), r2(2);
  KBroadcastNode holder(rc, 1, {p}, r1);
  KBroadcastNode idle(rc, 2, {}, r2);
  EXPECT_TRUE(holder.is_participant());
  EXPECT_FALSE(idle.is_participant());
}

TEST(KBroadcastNode, DeliveredPacketsBeforeStage4IsOwn) {
  const graph::Graph g = graph::make_path(4);
  const ResolvedConfig rc = small_rc(g);
  radio::Packet p;
  p.id = radio::make_packet_id(1, 0);
  p.payload = {1, 2};
  Rng rng(3);
  KBroadcastNode node(rc, 1, {p}, rng);
  const auto delivered = node.delivered_packets();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], p);
  EXPECT_FALSE(node.done());
}

TEST(KBroadcastNode, SoleParticipantBecomesLeaderAndRoot) {
  // Drive a single node with no radio traffic at all: as the only
  // participant it elects itself (silence = negative probes) and enters
  // the BFS stage as the root.
  const graph::Graph g = graph::make_path(4);
  const ResolvedConfig rc = small_rc(g);
  radio::Packet p;
  p.id = radio::make_packet_id(2, 0);
  Rng rng(4);
  KBroadcastNode node(rc, 2, {p}, rng);
  for (radio::Round r = 0; r <= rc.stage1_rounds; ++r) node.on_transmit(r);
  EXPECT_TRUE(node.is_leader());
  EXPECT_EQ(node.leader_id(), 2u);
  EXPECT_TRUE(node.has_bfs_distance());
  EXPECT_EQ(node.bfs_distance(), 0u);
  EXPECT_EQ(node.bfs_parent(), 2u);
}

TEST(KBroadcastNode, LoneRootFinishesCollectionAndIsDone) {
  // The sole participant collects only its own packets; the first phase is
  // alarm-free, so Stage 3 ends and Stage 4 makes the root complete.
  const graph::Graph g = graph::make_path(4);
  const ResolvedConfig rc = small_rc(g);
  radio::Packet p;
  p.id = radio::make_packet_id(2, 0);
  Rng rng(5);
  KBroadcastNode node(rc, 2, {p}, rng);
  const std::uint64_t stage3 =
      collection_phase_rounds(rc.initial_estimate, rc);
  for (radio::Round r = 0; r <= rc.stage3_start() + stage3 + 1; ++r) {
    node.on_transmit(r);
  }
  EXPECT_EQ(node.stage3_end(), rc.stage3_start() + stage3);
  EXPECT_TRUE(node.done());
  ASSERT_NE(node.collection(), nullptr);
  EXPECT_EQ(node.collection()->collected().size(), 1u);
}

TEST(KBroadcastNode, NonParticipantSleepsThroughStage1Silence) {
  const graph::Graph g = graph::make_path(4);
  const ResolvedConfig rc = small_rc(g);
  Rng rng(6);
  KBroadcastNode node(rc, 0, {}, rng);
  // A non-participant polled through stage 1 never transmits (it has no
  // signal to contribute and no alarm to relay).
  for (radio::Round r = 0; r < rc.stage1_rounds; ++r) {
    EXPECT_FALSE(node.on_transmit(r).has_value());
  }
  EXPECT_FALSE(node.is_leader());
}

TEST(KBroadcastNode, StageBoundariesMatchResolvedConfig) {
  Rng grng(7);
  const graph::Graph g = graph::make_gnp_connected(24, 0.2, grng);
  const ResolvedConfig rc = small_rc(g);
  EXPECT_EQ(rc.stage3_start(), rc.stage1_rounds + rc.stage2_rounds);
  EXPECT_GT(rc.stage1_rounds, 0u);
  EXPECT_GT(rc.stage2_rounds, 0u);
  // Stage 1 is exactly probes * probe window.
  EXPECT_EQ(rc.stage1_rounds % (static_cast<std::uint64_t>(rc.leader_probe_epochs) *
                                rc.log_delta),
            0u);
}

TEST(KBroadcastNode, DoneIsMonotone) {
  // Once done, driving the node further never un-dones it.
  Rng grng(8);
  const graph::Graph g = graph::make_star(12);
  const ResolvedConfig rc = small_rc(g);
  radio::Network net(g);
  Rng master(9);
  Rng prng(10);
  const Placement placement =
      make_placement(12, 6, PlacementMode::kRandom, 8, prng);
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    net.set_protocol(v, std::make_unique<KBroadcastNode>(rc, v, placement[v],
                                                         master.split()));
    if (!placement[v].empty()) net.wake_at_start(v);
  }
  const bool all = net.run_until_done(2'000'000);
  ASSERT_TRUE(all);
  for (int extra = 0; extra < 200; ++extra) net.step();
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_TRUE(net.protocol(v).done());
  }
}

TEST(KBroadcastNode, LeaderHoldsCollectedSetAsDelivered) {
  Rng grng(11);
  const graph::Graph g = graph::make_gnp_connected(16, 0.3, grng);
  const ResolvedConfig rc = small_rc(g);
  radio::Network net(g);
  Rng master(12);
  Rng prng(13);
  const Placement placement =
      make_placement(16, 10, PlacementMode::kRandom, 8, prng);
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    net.set_protocol(v, std::make_unique<KBroadcastNode>(rc, v, placement[v],
                                                         master.split()));
    if (!placement[v].empty()) net.wake_at_start(v);
  }
  ASSERT_TRUE(net.run_until_done(2'000'000));
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& node = static_cast<const KBroadcastNode&>(net.protocol(v));
    if (node.is_leader()) {
      EXPECT_EQ(node.delivered_packets().size(), 10u);
      ASSERT_NE(node.dissemination(), nullptr);
      EXPECT_TRUE(node.dissemination()->complete());
    }
  }
}

}  // namespace
}  // namespace radiocast::core
