// Parameterized invariants across every generator family and several
// sizes: handshake lemma, adjacency symmetry, BFS-tree structure,
// diameter/eccentricity consistency, generator determinism.
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace radiocast::graph {
namespace {

class FamilySizeGrid
    : public ::testing::TestWithParam<std::tuple<std::string, NodeId>> {
 protected:
  Graph make() const {
    Rng rng(std::get<1>(GetParam()) * 31 + 7);
    return make_named(std::get<0>(GetParam()), std::get<1>(GetParam()), rng);
  }
};

TEST_P(FamilySizeGrid, HandshakeLemma) {
  const Graph g = make();
  std::size_t degree_sum = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) degree_sum += g.degree(v);
  EXPECT_EQ(degree_sum, 2 * g.num_edges());
}

TEST_P(FamilySizeGrid, AdjacencySymmetricAndLoopFree) {
  const Graph g = make();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      EXPECT_NE(u, v);
      EXPECT_TRUE(g.has_edge(v, u));
    }
  }
}

TEST_P(FamilySizeGrid, BfsTreeSpansAndIsValid) {
  const Graph g = make();
  const BfsResult r = bfs(g, 0);
  std::size_t reachable = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (r.dist[v] != kUnreachable) ++reachable;
  }
  EXPECT_EQ(reachable, g.num_nodes());  // all families are connected
  EXPECT_TRUE(is_valid_bfs_tree(g, 0, r.parent, r.dist));
}

TEST_P(FamilySizeGrid, DiameterBoundsEccentricity) {
  const Graph g = make();
  if (g.num_nodes() > 120) GTEST_SKIP() << "diameter is O(nm); keep tests fast";
  const std::uint32_t diam = diameter(g);
  for (NodeId s = 0; s < g.num_nodes(); s += std::max<NodeId>(1, g.num_nodes() / 7)) {
    const BfsResult r = bfs(g, s);
    EXPECT_LE(r.eccentricity, diam);
    EXPECT_GE(2 * r.eccentricity + 1, diam);  // ecc >= diam/2
  }
}

TEST_P(FamilySizeGrid, GeneratorDeterministicGivenSeed) {
  const auto& [family, n] = GetParam();
  Rng a(1234), b(1234);
  const Graph g1 = make_named(family, n, a);
  const Graph g2 = make_named(family, n, b);
  EXPECT_EQ(g1.edges(), g2.edges());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FamilySizeGrid,
    ::testing::Combine(::testing::ValuesIn(named_families()),
                       ::testing::Values<NodeId>(12, 40, 90)));

}  // namespace
}  // namespace radiocast::graph
