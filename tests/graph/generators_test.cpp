#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/algorithms.hpp"

namespace radiocast::graph {
namespace {

TEST(Generators, PathShape) {
  const Graph g = make_path(6);
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_EQ(diameter(g), 5u);
}

TEST(Generators, CycleShape) {
  const Graph g = make_cycle(8);
  EXPECT_EQ(g.num_edges(), 8u);
  for (NodeId v = 0; v < 8; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(Generators, StarShape) {
  const Graph g = make_star(9);
  EXPECT_EQ(g.num_edges(), 8u);
  EXPECT_EQ(g.degree(0), 8u);
  for (NodeId v = 1; v < 9; ++v) EXPECT_EQ(g.degree(v), 1u);
}

TEST(Generators, CompleteShape) {
  const Graph g = make_complete(7);
  EXPECT_EQ(g.num_edges(), 21u);
  EXPECT_EQ(g.max_degree(), 6u);
  EXPECT_EQ(diameter(g), 1u);
}

TEST(Generators, GridShape) {
  const Graph g = make_grid(3, 4);
  EXPECT_EQ(g.num_nodes(), 12u);
  EXPECT_EQ(g.num_edges(), 3u * 3 + 2u * 4);  // horizontal + vertical
  EXPECT_LE(g.max_degree(), 4u);
  EXPECT_EQ(diameter(g), 5u);
}

TEST(Generators, TorusIsRegular) {
  const Graph g = make_torus(4, 5);
  EXPECT_EQ(g.num_nodes(), 20u);
  for (NodeId v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(Generators, RandomTreeIsTree) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = make_random_tree(50, rng);
    EXPECT_EQ(g.num_edges(), 49u);
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(Generators, CaterpillarShape) {
  const Graph g = make_caterpillar(5, 3);
  EXPECT_EQ(g.num_nodes(), 20u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.max_degree(), 5u);  // interior spine: 2 spine + 3 legs
  EXPECT_EQ(diameter(g), 6u);     // leaf - spine...spine - leaf
}

TEST(Generators, ClusterChainShape) {
  const Graph g = make_cluster_chain(4, 5);
  EXPECT_EQ(g.num_nodes(), 20u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.max_degree(), 5u);  // bridge endpoints: 4 clique + 1 bridge
  // Diameter: within-clique hops + bridges: 2 per clique boundary.
  EXPECT_EQ(diameter(g), 7u);
}

TEST(Generators, GnpIsConnectedEvenWhenSparse) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = make_gnp_connected(40, 0.02, rng);  // far below threshold
    EXPECT_TRUE(is_connected(g));
    EXPECT_EQ(g.num_nodes(), 40u);
  }
}

TEST(Generators, GeometricIsConnected) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = make_random_geometric(60, 0.2, rng);
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(Generators, BoundedDegreeRespectsCap) {
  Rng rng(4);
  for (std::size_t cap : {3u, 5u, 8u}) {
    const Graph g = make_bounded_degree(60, cap, 0.8, rng);
    EXPECT_TRUE(is_connected(g));
    EXPECT_LE(g.max_degree(), cap);
  }
}

TEST(Generators, BarbellShape) {
  const Graph g = make_barbell(4, 3);
  EXPECT_EQ(g.num_nodes(), 11u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(diameter(g), 6u);  // clique hop + 4 path edges + clique hop
}

TEST(Generators, DeterministicGivenSeed) {
  Rng a(9), b(9);
  const Graph g1 = make_gnp_connected(30, 0.15, a);
  const Graph g2 = make_gnp_connected(30, 0.15, b);
  EXPECT_EQ(g1.edges(), g2.edges());
}

// Invariants common to every named family.
class FamilyInvariants : public ::testing::TestWithParam<std::string> {};

TEST_P(FamilyInvariants, ConnectedRightSizeNoSelfLoops) {
  Rng rng(11);
  for (NodeId n : {16u, 48u, 100u}) {
    const Graph g = make_named(GetParam(), n, rng);
    EXPECT_TRUE(is_connected(g)) << GetParam() << " n=" << n;
    EXPECT_GE(g.num_nodes(), n / 2) << GetParam();  // families may round shape
    EXPECT_GE(g.num_edges(), g.num_nodes() - 1) << GetParam();
    for (const auto& [u, v] : g.edges()) EXPECT_NE(u, v);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilyInvariants,
                         ::testing::ValuesIn(named_families()));

}  // namespace
}  // namespace radiocast::graph
