// Property tests for the contiguous node-range shard partitioner
// (graph::ShardPlan). The sharded round engines lean on three structural
// guarantees checked here: every node lands in exactly one shard (the
// ranges tile [0, n) with no gaps or overlaps), every CSR row is sliced
// into per-shard sub-ranges whose concatenation reproduces the row, and
// every cut edge is indexed exactly once per side (the off-diagonal slice
// entries). Degenerate shapes — empty graphs, more shards than nodes,
// a single clique — must produce valid (possibly empty) plans, never UB.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"

namespace radiocast::graph {
namespace {

const std::uint32_t kShardCounts[] = {1, 2, 4, 7, 16};
const std::uint32_t kAlignments[] = {1, 64};

/// Cross-checks every structural invariant of a plan against the graph.
void check_plan(const Graph& g, const ShardPlan& plan, std::uint32_t requested,
                std::uint32_t alignment) {
  const std::uint32_t s_count = plan.num_shards();
  ASSERT_GE(s_count, 1u);
  ASSERT_LE(s_count, requested);
  EXPECT_EQ(plan.alignment(), alignment);

  // Ranges tile [0, n): ascending bounds, first at 0, last at n, and —
  // except for the n=0 degenerate — every shard nonempty.
  EXPECT_EQ(plan.node_begin(0), 0u);
  EXPECT_EQ(plan.node_end(s_count - 1), g.num_nodes());
  for (std::uint32_t s = 0; s < s_count; ++s) {
    EXPECT_LE(plan.node_begin(s), plan.node_end(s));
    if (s + 1 < s_count) EXPECT_EQ(plan.node_end(s), plan.node_begin(s + 1));
    if (g.num_nodes() > 0) EXPECT_LT(plan.node_begin(s), plan.node_end(s));
    // Interior boundaries respect the alignment grid (the last boundary is
    // n itself, which need not be a multiple).
    if (s > 0) EXPECT_EQ(plan.node_begin(s) % alignment, 0u);
  }

  // shard_of agrees with the ranges — so each node is in exactly one shard.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const std::uint32_t s = plan.shard_of(v);
    ASSERT_LT(s, s_count);
    EXPECT_GE(v, plan.node_begin(s));
    EXPECT_LT(v, plan.node_end(s));
  }

  if (!g.finalized() || g.num_nodes() == 0) return;

  // Row slices: for every row u, the per-shard split cursors are
  // monotone, cover the row exactly, and slice s holds precisely the
  // neighbors that live in shard s (so concatenating the slices in shard
  // order reproduces the sorted row, and each edge endpoint is indexed in
  // exactly one slice).
  const std::size_t* offsets = g.csr_offsets();
  const NodeId* targets = g.csr_targets();
  std::size_t off_diagonal = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    ASSERT_EQ(plan.row_split(u, 0), offsets[u]);
    ASSERT_EQ(plan.row_split(u, s_count), offsets[u + 1]);
    const std::uint32_t home = plan.shard_of(u);
    for (std::uint32_t s = 0; s < s_count; ++s) {
      const std::size_t lo = plan.row_split(u, s);
      const std::size_t hi = plan.row_split(u, s + 1);
      ASSERT_LE(lo, hi);
      for (std::size_t e = lo; e < hi; ++e) {
        EXPECT_EQ(plan.shard_of(targets[e]), s)
            << "row " << u << " slice " << s << " holds neighbor "
            << targets[e];
      }
      if (s != home) off_diagonal += hi - lo;
    }
  }

  // Cut-edge accounting: brute-force count of edges whose endpoints land
  // in different shards must equal the plan's tally, and the off-diagonal
  // slice entries must be exactly one per side per cut edge.
  std::size_t brute_cut = 0;
  for (const auto& [u, v] : g.edges()) {
    if (plan.shard_of(u) != plan.shard_of(v)) ++brute_cut;
  }
  EXPECT_EQ(plan.num_cut_edges(), 2 * brute_cut);  // once per side
  EXPECT_EQ(off_diagonal, 2 * brute_cut);
}

TEST(ShardPlan, PropertiesHoldAcrossFamiliesShardCountsAndAlignments) {
  Rng rng(0x5eed5);
  std::vector<Graph> graphs;
  graphs.push_back(make_gnp_connected(96, 0.08, rng));
  graphs.push_back(make_bounded_degree(200, 6, 0.7, rng));
  graphs.push_back(make_grid(12, 11));
  graphs.push_back(make_path(40));
  graphs.push_back(make_star(33));
  for (const Graph& g : graphs) {
    for (std::uint32_t s : kShardCounts) {
      for (std::uint32_t a : kAlignments) {
        check_plan(g, ShardPlan::build(g, s, a), s, a);
      }
    }
  }
}

TEST(ShardPlan, EdgeBalancedBoundariesOnSkewedDegrees) {
  // A star concentrates all edges on node 0; the greedy edge-balanced
  // boundary must still produce nonempty shards covering [0, n).
  const Graph g = make_star(257);
  const ShardPlan plan = ShardPlan::build(g, 4, 1);
  check_plan(g, plan, 4, 1);
  EXPECT_EQ(plan.num_shards(), 4u);
}

TEST(ShardPlan, EmptyGraphYieldsSingleEmptyShard) {
  Graph g(0);
  g.finalize();
  const ShardPlan plan = ShardPlan::build(g, 8, 64);
  EXPECT_EQ(plan.num_shards(), 1u);
  EXPECT_EQ(plan.node_begin(0), 0u);
  EXPECT_EQ(plan.node_end(0), 0u);
  EXPECT_EQ(plan.num_cut_edges(), 0u);
}

TEST(ShardPlan, MoreShardsThanNodesClampsToNodeCount) {
  const Graph g = make_path(5);
  const ShardPlan plan = ShardPlan::build(g, 16, 1);
  EXPECT_EQ(plan.num_shards(), 5u);  // one node per shard, all nonempty
  check_plan(g, plan, 16, 1);
}

TEST(ShardPlan, MoreShardsThanAlignmentBlocksClampsToBlockCount) {
  // 100 nodes at alignment 64 → two blocks → at most two shards.
  Rng rng(11);
  const Graph g = make_gnp_connected(100, 0.1, rng);
  const ShardPlan plan = ShardPlan::build(g, 7, 64);
  EXPECT_EQ(plan.num_shards(), 2u);
  check_plan(g, plan, 7, 64);
}

TEST(ShardPlan, SingleCliqueAllEdgesBecomeCutEdgesUnderManyShards) {
  const Graph g = make_cluster_chain(1, 12);  // one K12
  const ShardPlan plan = ShardPlan::build(g, 4, 1);
  check_plan(g, plan, 4, 1);
  // A clique split into >1 shards must expose cut edges.
  EXPECT_GT(plan.num_cut_edges(), 0u);
}

TEST(ShardPlan, SingleShardHasNoCutEdges) {
  Rng rng(3);
  const Graph g = make_gnp_connected(64, 0.1, rng);
  const ShardPlan plan = ShardPlan::build(g, 1, 64);
  EXPECT_EQ(plan.num_shards(), 1u);
  EXPECT_EQ(plan.num_cut_edges(), 0u);
  check_plan(g, plan, 1, 64);
}

TEST(ShardPlan, DefaultConstructedPlanIsEmpty) {
  const ShardPlan plan;
  EXPECT_EQ(plan.num_shards(), 0u);
}

}  // namespace
}  // namespace radiocast::graph
