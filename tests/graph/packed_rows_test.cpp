// Word-group adjacency index (graph/packed.hpp) against the CSR oracle.
//
// Every test reconstructs neighbor sets from (word, mask) groups and
// compares them with Graph::neighbors — the groups are just a re-encoding,
// so the round trip must be exact on any finalized graph.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/packed.hpp"

namespace radiocast::graph {
namespace {

std::vector<NodeId> expand_groups(std::span<const WordGroup> groups) {
  std::vector<NodeId> ids;
  std::uint32_t prev_word = 0;
  bool first = true;
  for (const WordGroup& grp : groups) {
    EXPECT_NE(grp.mask, 0u);
    if (!first) {
      EXPECT_GT(grp.word, prev_word) << "groups not ascending";
    }
    first = false;
    prev_word = grp.word;
    std::uint64_t m = grp.mask;
    while (m != 0) {
      ids.push_back(static_cast<NodeId>(grp.word) * 64 +
                    static_cast<NodeId>(std::countr_zero(m)));
      m &= m - 1;
    }
  }
  return ids;
}

void expect_rows_match(const Graph& g, const PackedRows& rows) {
  ASSERT_TRUE(rows.built());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto nbrs = g.neighbors(u);
    const std::vector<NodeId> expect(nbrs.begin(), nbrs.end());
    EXPECT_EQ(expand_groups(rows.row(u)), expect) << "row " << u;
  }
}

TEST(PackedRows, BuildAlwaysReconstructsNeighborsOnRandomGraph) {
  Rng rng(0x9acced1ULL);
  const Graph g = make_gnp_connected(300, 0.05, rng);
  expect_rows_match(g, PackedRows::build_always(g));
}

TEST(PackedRows, BuildAlwaysReconstructsNeighborsOnStructuredGraphs) {
  const Graph grid = make_grid(12, 17);
  expect_rows_match(grid, PackedRows::build_always(grid));
  const Graph chain = make_cluster_chain(8, 20);
  expect_rows_match(chain, PackedRows::build_always(chain));
  const Graph star = make_star(130);
  expect_rows_match(star, PackedRows::build_always(star));
}

TEST(PackedRows, AdaptiveBuildAcceptsIdLocalGraph) {
  // Cliques of 20 consecutive ids: every row fits in one or two words, so
  // grouping compresses far past the 2x threshold.
  const Graph g = make_cluster_chain(16, 20);
  const PackedRows rows = PackedRows::build(g);
  EXPECT_TRUE(rows.built());
  EXPECT_LE(rows.num_groups() * 4, 2 * g.num_edges());
  expect_rows_match(g, rows);
}

TEST(PackedRows, AdaptiveBuildDeclinesScatteredGraph) {
  // Sparse uniform G(n,p): neighbors land in distinct words, one group per
  // edge endpoint — grouping would grow memory, so build() declines.
  Rng rng(0x9acced2ULL);
  const Graph g = make_gnp_connected(2000, 0.002, rng);
  const PackedRows rows = PackedRows::build(g);
  EXPECT_FALSE(rows.built());
  EXPECT_EQ(rows.num_groups(), 0u);
}

TEST(PackedRows, ForEachWordGroupMatchesIndexOnEveryRow) {
  Rng rng(0x9acced3ULL);
  const Graph g = make_bounded_degree(400, 6, 0.7, rng);
  const PackedRows rows = PackedRows::build_always(g);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    std::vector<WordGroup> streamed;
    for_each_word_group(g.neighbors(u), [&](std::uint32_t word, std::uint64_t mask) {
      streamed.push_back(WordGroup{word, mask});
    });
    const auto indexed = rows.row(u);
    ASSERT_EQ(streamed.size(), indexed.size()) << "row " << u;
    for (std::size_t i = 0; i < streamed.size(); ++i) {
      EXPECT_EQ(streamed[i].word, indexed[i].word) << "row " << u << " group " << i;
      EXPECT_EQ(streamed[i].mask, indexed[i].mask) << "row " << u << " group " << i;
    }
  }
}

TEST(PackedRows, EmptyRowsYieldNoGroups) {
  // Star: every leaf row is exactly one group (the hub's word), and the
  // hub's row spans ceil((n-1)/64)-ish groups of consecutive ids.
  const Graph g = make_star(200);
  const PackedRows rows = PackedRows::build_always(g);
  for (NodeId leaf = 1; leaf < g.num_nodes(); ++leaf) {
    EXPECT_EQ(rows.row(leaf).size(), 1u);
  }
  std::size_t hub_bits = 0;
  for (const WordGroup& grp : rows.row(0)) {
    hub_bits += static_cast<std::size_t>(std::popcount(grp.mask));
  }
  EXPECT_EQ(hub_bits, g.num_nodes() - 1);
}

}  // namespace
}  // namespace radiocast::graph
