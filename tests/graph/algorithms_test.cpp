#include "graph/algorithms.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace radiocast::graph {
namespace {

TEST(Bfs, PathDistances) {
  const Graph g = make_path(5);
  const BfsResult r = bfs(g, 0);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(r.dist[v], v);
  EXPECT_EQ(r.eccentricity, 4u);
  EXPECT_EQ(r.parent[0], 0u);
  for (NodeId v = 1; v < 5; ++v) EXPECT_EQ(r.parent[v], v - 1);
}

TEST(Bfs, DisconnectedMarksUnreachable) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.finalize();
  const BfsResult r = bfs(g, 0);
  EXPECT_EQ(r.dist[1], 1u);
  EXPECT_EQ(r.dist[2], kUnreachable);
  EXPECT_EQ(r.dist[3], kUnreachable);
  EXPECT_FALSE(is_connected(g));
  EXPECT_EQ(num_components(g), 2u);
}

TEST(Connectivity, SingleVertexConnected) {
  Graph g(1);
  g.finalize();
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(num_components(g), 1u);
}

TEST(Diameter, KnownFamilies) {
  EXPECT_EQ(diameter(make_path(10)), 9u);
  EXPECT_EQ(diameter(make_cycle(10)), 5u);
  EXPECT_EQ(diameter(make_cycle(11)), 5u);
  EXPECT_EQ(diameter(make_star(10)), 2u);
  EXPECT_EQ(diameter(make_complete(10)), 1u);
  EXPECT_EQ(diameter(make_grid(4, 6)), 8u);
}

TEST(AllPairs, MatchesBfsAndIsSymmetric) {
  Rng rng(1);
  const Graph g = make_gnp_connected(24, 0.2, rng);
  const auto d = all_pairs_distances(g);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(d[u][v], d[v][u]);
    }
    EXPECT_EQ(d[u][u], 0u);
  }
  // Triangle inequality.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      for (NodeId w = 0; w < g.num_nodes(); ++w) {
        EXPECT_LE(d[u][w], d[u][v] + d[v][w]);
      }
    }
  }
}

TEST(BfsTreeValidation, AcceptsTrueBfsTree) {
  Rng rng(2);
  const Graph g = make_random_geometric(40, 0.35, rng);
  const BfsResult r = bfs(g, 3);
  EXPECT_TRUE(is_valid_bfs_tree(g, 3, r.parent, r.dist));
}

TEST(BfsTreeValidation, RejectsWrongDistance) {
  const Graph g = make_path(5);
  BfsResult r = bfs(g, 0);
  r.dist[3] = 7;
  EXPECT_FALSE(is_valid_bfs_tree(g, 0, r.parent, r.dist));
}

TEST(BfsTreeValidation, RejectsNonNeighborParent) {
  const Graph g = make_path(5);
  BfsResult r = bfs(g, 0);
  r.parent[4] = 0;  // not adjacent to 4
  EXPECT_FALSE(is_valid_bfs_tree(g, 0, r.parent, r.dist));
}

TEST(BfsTreeValidation, RejectsWrongSizes) {
  const Graph g = make_path(3);
  const BfsResult r = bfs(g, 0);
  std::vector<NodeId> short_parent(r.parent.begin(), r.parent.end() - 1);
  EXPECT_FALSE(is_valid_bfs_tree(g, 0, short_parent, r.dist));
}

// Property sweep: on every named family, BFS distances from node 0 respect
// the edge relaxation property (|d(u) - d(v)| <= 1 for every edge).
class BfsFamilyProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(BfsFamilyProperty, EdgeRelaxation) {
  Rng rng(7);
  const Graph g = make_named(GetParam(), 48, rng);
  ASSERT_TRUE(is_connected(g));
  const BfsResult r = bfs(g, 0);
  for (const auto& [u, v] : g.edges()) {
    const auto du = static_cast<std::int64_t>(r.dist[u]);
    const auto dv = static_cast<std::int64_t>(r.dist[v]);
    EXPECT_LE(std::abs(du - dv), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, BfsFamilyProperty,
                         ::testing::ValuesIn(named_families()));

}  // namespace
}  // namespace radiocast::graph
