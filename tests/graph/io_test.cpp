#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace radiocast::graph {
namespace {

TEST(GraphIo, RoundTripAllFamilies) {
  Rng rng(1);
  for (const std::string& family : named_families()) {
    const Graph g = make_named(family, 32, rng);
    std::string error;
    const auto parsed = from_edge_list_string(to_edge_list_string(g), &error);
    ASSERT_TRUE(parsed.has_value()) << family << ": " << error;
    EXPECT_EQ(parsed->num_nodes(), g.num_nodes()) << family;
    EXPECT_EQ(parsed->edges(), g.edges()) << family;
  }
}

TEST(GraphIo, EmptyGraphRoundTrip) {
  Graph g(0);
  g.finalize();
  const auto parsed = from_edge_list_string(to_edge_list_string(g));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->num_nodes(), 0u);
}

TEST(GraphIo, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# a comment\n"
      "\n"
      "n 3   # trailing comment\n"
      "e 0 1\n"
      "\n"
      "e 1 2 # another\n";
  const auto g = from_edge_list_string(text);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->num_nodes(), 3u);
  EXPECT_EQ(g->num_edges(), 2u);
  EXPECT_TRUE(g->has_edge(0, 1));
  EXPECT_TRUE(g->has_edge(1, 2));
}

TEST(GraphIo, RejectsMissingHeader) {
  std::string error;
  EXPECT_FALSE(from_edge_list_string("e 0 1\n", &error).has_value());
  EXPECT_NE(error.find("'e' before 'n'"), std::string::npos);
  error.clear();
  EXPECT_FALSE(from_edge_list_string("", &error).has_value());
  EXPECT_NE(error.find("missing 'n'"), std::string::npos);
}

TEST(GraphIo, RejectsDuplicateHeader) {
  std::string error;
  EXPECT_FALSE(from_edge_list_string("n 2\nn 3\n", &error).has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos);
}

TEST(GraphIo, RejectsOutOfRangeEndpoints) {
  std::string error;
  EXPECT_FALSE(from_edge_list_string("n 2\ne 0 2\n", &error).has_value());
  EXPECT_NE(error.find("out of range"), std::string::npos);
  EXPECT_FALSE(from_edge_list_string("n 2\ne -1 0\n", &error).has_value());
}

TEST(GraphIo, RejectsSelfLoop) {
  std::string error;
  EXPECT_FALSE(from_edge_list_string("n 2\ne 1 1\n", &error).has_value());
  EXPECT_NE(error.find("self-loop"), std::string::npos);
}

TEST(GraphIo, RejectsUnknownDirective) {
  std::string error;
  EXPECT_FALSE(from_edge_list_string("n 2\nx 0 1\n", &error).has_value());
  EXPECT_NE(error.find("unknown directive"), std::string::npos);
}

TEST(GraphIo, RejectsMalformedCounts) {
  std::string error;
  EXPECT_FALSE(from_edge_list_string("n foo\n", &error).has_value());
  EXPECT_FALSE(from_edge_list_string("n 2\ne 0\n", &error).has_value());
}

TEST(GraphIo, ErrorMentionsLineNumber) {
  std::string error;
  EXPECT_FALSE(from_edge_list_string("n 2\ne 0 1\ne 5 0\n", &error).has_value());
  EXPECT_NE(error.find("line 3"), std::string::npos);
}

TEST(GraphIo, DuplicateEdgesCollapse) {
  const auto g = from_edge_list_string("n 2\ne 0 1\ne 1 0\n");
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->num_edges(), 1u);
}

TEST(GraphIo, DotOutputContainsEdges) {
  const Graph g = make_path(3);
  std::ostringstream out;
  write_dot(out, g, "p3");
  const std::string s = out.str();
  EXPECT_NE(s.find("graph p3 {"), std::string::npos);
  EXPECT_NE(s.find("0 -- 1;"), std::string::npos);
  EXPECT_NE(s.find("1 -- 2;"), std::string::npos);
}

TEST(GraphIo, DotListsIsolatedVertices) {
  Graph g(3);
  g.add_edge(0, 1);
  g.finalize();
  std::ostringstream out;
  write_dot(out, g);
  EXPECT_NE(out.str().find("  2;"), std::string::npos);
}

}  // namespace
}  // namespace radiocast::graph
