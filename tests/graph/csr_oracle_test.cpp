// Randomized differential test of the CSR graph layout against a trivial
// adjacency-map oracle. Both sides consume the same randomized edge
// stream — including duplicate insertions and rejected self-loops — and
// must then agree on every query the Graph API exposes: num_edges,
// degree, neighbors (contents *and* order: ascending after finalize),
// has_edge over all pairs, the edge list, and max_degree. This is the
// direct correctness check for the builder-lists → finalize() compaction
// path; the engine-level differential test (tests/audit) covers it only
// indirectly through simulation digests.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace radiocast::graph {
namespace {

/// The oracle: a sorted adjacency map with the same insertion rules as
/// Graph::add_edge (no self-loops, duplicates ignored, undirected).
struct OracleGraph {
  explicit OracleGraph(NodeId n) : n(n) {}

  void add_edge(NodeId u, NodeId v) {
    if (u == v) return;
    if (adjacency[u].insert(v).second) {
      adjacency[v].insert(u);
      ++edges;
    }
  }

  NodeId n;
  std::size_t edges = 0;
  std::map<NodeId, std::set<NodeId>> adjacency;
};

void expect_equivalent(const Graph& g, const OracleGraph& oracle) {
  ASSERT_EQ(g.num_nodes(), oracle.n);
  EXPECT_EQ(g.num_edges(), oracle.edges);

  std::size_t max_deg = 0;
  for (NodeId u = 0; u < oracle.n; ++u) {
    const auto it = oracle.adjacency.find(u);
    const std::set<NodeId> empty;
    const std::set<NodeId>& expected = it == oracle.adjacency.end() ? empty : it->second;
    max_deg = std::max(max_deg, expected.size());

    ASSERT_EQ(g.degree(u), expected.size()) << "degree mismatch at " << u;
    const auto span = g.neighbors(u);
    const std::vector<NodeId> got(span.begin(), span.end());
    // std::set iterates ascending, matching the CSR's sorted runs — this
    // checks contents and order in one comparison.
    const std::vector<NodeId> want(expected.begin(), expected.end());
    EXPECT_EQ(got, want) << "neighbor list mismatch at " << u;
  }
  EXPECT_EQ(g.max_degree(), max_deg);

  for (NodeId u = 0; u < oracle.n; ++u) {
    for (NodeId v = 0; v < oracle.n; ++v) {
      const auto it = oracle.adjacency.find(u);
      const bool want = it != oracle.adjacency.end() && it->second.count(v) > 0;
      EXPECT_EQ(g.has_edge(u, v), want) << "has_edge(" << u << "," << v << ")";
    }
  }

  std::vector<std::pair<NodeId, NodeId>> want_edges;
  for (const auto& [u, nbrs] : oracle.adjacency) {
    for (NodeId v : nbrs) {
      if (u < v) want_edges.emplace_back(u, v);
    }
  }
  std::sort(want_edges.begin(), want_edges.end());
  std::vector<std::pair<NodeId, NodeId>> got_edges = g.edges();
  std::sort(got_edges.begin(), got_edges.end());
  EXPECT_EQ(got_edges, want_edges);
}

TEST(CsrOracle, RandomEdgeStreamsAgreeWithAdjacencyMap) {
  Rng rng(0xc5a0e11eull);
  for (int trial = 0; trial < 24; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const NodeId n = static_cast<NodeId>(2 + rng.next_below(40));
    // Densities from near-empty to near-complete; insertions drawn with
    // replacement so duplicates (and self-loop attempts) occur naturally.
    const std::size_t attempts = rng.next_below(n * n + 1);

    Graph g(n);
    OracleGraph oracle(n);
    for (std::size_t i = 0; i < attempts; ++i) {
      const NodeId u = static_cast<NodeId>(rng.next_below(n));
      const NodeId v = static_cast<NodeId>(rng.next_below(n));
      if (u == v) continue;  // Graph::add_edge asserts on self-loops
      g.add_edge(u, v);
      oracle.add_edge(u, v);
    }
    g.finalize();
    ASSERT_TRUE(g.finalized());
    expect_equivalent(g, oracle);
  }
}

TEST(CsrOracle, EdgelessAndIsolatedVertices) {
  // Degenerate shapes: no edges at all, and a graph whose last vertices
  // are isolated (their CSR runs are empty and share offsets).
  Graph empty(5);
  empty.finalize();
  expect_equivalent(empty, OracleGraph(5));

  Graph g(6);
  OracleGraph oracle(6);
  g.add_edge(0, 1);
  oracle.add_edge(0, 1);
  g.add_edge(1, 2);
  oracle.add_edge(1, 2);
  g.finalize();
  expect_equivalent(g, oracle);
}

TEST(CsrOracle, RawCsrViewMatchesNeighborSpans) {
  // The hot-loop accessors (csr_offsets/csr_targets) must describe
  // exactly the same lists as neighbors().
  Rng rng(0xdeadc0deull);
  Graph g(32);
  for (int i = 0; i < 128; ++i) {
    const NodeId u = static_cast<NodeId>(rng.next_below(32));
    const NodeId v = static_cast<NodeId>(rng.next_below(32));
    if (u != v) g.add_edge(u, v);
  }
  g.finalize();

  const std::size_t* offsets = g.csr_offsets();
  const NodeId* targets = g.csr_targets();
  EXPECT_EQ(offsets[0], 0u);
  EXPECT_EQ(offsets[g.num_nodes()], 2 * g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto span = g.neighbors(u);
    ASSERT_EQ(offsets[u + 1] - offsets[u], span.size());
    for (std::size_t i = 0; i < span.size(); ++i) {
      EXPECT_EQ(targets[offsets[u] + i], span[i]);
    }
  }
}

}  // namespace
}  // namespace radiocast::graph
