#include "graph/graph.hpp"

#include <gtest/gtest.h>

namespace radiocast::graph {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g(0);
  g.finalize();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
}

TEST(Graph, IsolatedVertices) {
  Graph g(5);
  g.finalize();
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 0u);
}

TEST(Graph, AddEdgeSymmetric) {
  Graph g(4);
  g.add_edge(0, 2);
  g.finalize();
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 1u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Graph, DuplicateEdgesIgnored) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(0, 1);
  g.finalize();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(Graph, NeighborsSortedAfterFinalize) {
  Graph g(5);
  g.add_edge(0, 4);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.finalize();
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 2u);
  EXPECT_EQ(nbrs[1], 3u);
  EXPECT_EQ(nbrs[2], 4u);
}

TEST(Graph, EdgesListCanonical) {
  Graph g(4);
  g.add_edge(3, 1);
  g.add_edge(0, 2);
  g.finalize();
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 2u);
  for (const auto& [u, v] : edges) EXPECT_LT(u, v);
}

TEST(Graph, MaxDegree) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.add_edge(1, 2);
  g.finalize();
  EXPECT_EQ(g.max_degree(), 3u);
}

TEST(Graph, SummaryMentionsCounts) {
  Graph g(3);
  g.add_edge(0, 1);
  g.finalize();
  const std::string s = g.summary();
  EXPECT_NE(s.find("n=3"), std::string::npos);
  EXPECT_NE(s.find("m=1"), std::string::npos);
}

TEST(GraphDeath, SelfLoopRejected) {
  Graph g(3);
  EXPECT_DEATH(g.add_edge(1, 1), "self-loops");
}

TEST(GraphDeath, AddAfterFinalizeRejected) {
  Graph g(3);
  g.finalize();
  EXPECT_DEATH(g.add_edge(0, 1), "finalize");
}

}  // namespace
}  // namespace radiocast::graph
