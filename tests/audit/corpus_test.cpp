// The pinned-corpus gate: every corpus case must run with zero model
// violations, deliver all packets, and produce results bit-identical to
// the same run without an auditor attached. This is the acceptance bar
// for the whole audit subsystem — a clean full-grid audited sweep (all
// placement modes, fault rates, CD on/off, coded/uncoded) that provably
// does not perturb the simulation.
#include <gtest/gtest.h>

#include <sstream>

#include "audit/corpus.hpp"
#include "audit/violation.hpp"

namespace radiocast::audit {
namespace {

TEST(AuditCorpus, CoversTheRequiredGrid) {
  const auto& corpus = pinned_corpus();
  bool saw_random = false, saw_single = false, saw_spread = false;
  bool saw_lossy = false, saw_lossless = false;
  bool saw_cd = false, saw_no_cd = false;
  bool saw_coded = false, saw_uncoded = false;
  for (const CorpusCase& c : corpus) {
    saw_random |= c.placement == core::PlacementMode::kRandom;
    saw_single |= c.placement == core::PlacementMode::kSingleSource;
    saw_spread |= c.placement == core::PlacementMode::kSpreadEven;
    saw_lossy |= c.loss > 0.0;
    saw_lossless |= c.loss == 0.0;
    saw_cd |= c.collision_detection;
    saw_no_cd |= !c.collision_detection;
    saw_coded |= c.coded;
    saw_uncoded |= !c.coded;
  }
  EXPECT_TRUE(saw_random && saw_single && saw_spread);
  EXPECT_TRUE(saw_lossy && saw_lossless);
  EXPECT_TRUE(saw_cd && saw_no_cd);
  EXPECT_TRUE(saw_coded && saw_uncoded);
}

TEST(AuditCorpus, EveryCaseCleanDeliveredAndBitIdentical) {
  for (const CorpusCase& c : pinned_corpus()) {
    SCOPED_TRACE(c.name);
    const CorpusOutcome out = run_corpus_case(c);
    EXPECT_TRUE(out.delivered) << "audited run failed to deliver";
    EXPECT_TRUE(out.report.clean())
        << out.report.total() << " violations; first: "
        << out.report.violations().front().check << " — "
        << out.report.violations().front().detail;
    EXPECT_TRUE(out.bit_identical)
        << "audited and unaudited runs diverged (auditor is not read-only?)";
  }
}

TEST(AuditCorpus, JsonlReportIsWellFormedPerLine) {
  AuditReport report;
  report.add(7, 3, "radio.outcome", "expected delivered, got none");
  report.add(9, 0, "check\"with\nspecials", "tab\there");
  std::ostringstream out;
  write_jsonl(out, report);
  const std::string text = out.str();
  // One line per violation + the summary line.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
  EXPECT_NE(text.find("{\"round\":7,\"node\":3,\"check\":\"radio.outcome\""),
            std::string::npos);
  EXPECT_NE(text.find("check\\\"with\\nspecials"), std::string::npos);
  EXPECT_NE(text.find("{\"summary\":true,\"total\":2,\"dropped\":0}"),
            std::string::npos);
}

TEST(AuditCorpus, ReportCapsAndCountsDroppedViolations) {
  AuditReport report(/*max_violations=*/2);
  for (int i = 0; i < 5; ++i) report.add(i, 0, "c", "d");
  EXPECT_EQ(report.total(), 5u);
  EXPECT_EQ(report.violations().size(), 2u);
  EXPECT_EQ(report.dropped(), 3u);
  EXPECT_FALSE(report.clean());
}

}  // namespace
}  // namespace radiocast::audit
