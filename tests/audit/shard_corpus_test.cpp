// Shard-count invariance over the pinned audit corpus: every corpus case
// must clear the full audit gate (zero violations, delivery, audited ==
// unaudited) at every shard count, and — the invariance half — produce
// results field-identical and digest-identical to the single-shard scalar
// reference. The per-trial digest (exp::digest_run) is the same value the
// experiment manifests pin, so this test certifies that `shards`, like
// `threads`, is a pure execution knob that can never perturb a recorded
// result.
//
// The pinned corpus (n = 20–40) genuinely shards the scalar engine
// (alignment 1) but collapses to one shard under the bitset engine's
// 64-node alignment; the scaled local cases at the bottom (n = 256) exist
// so the bitset sharded sweeps also run under a full ModelAuditor.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "audit/corpus.hpp"
#include "exp/run.hpp"
#include "radio/network.hpp"

namespace radiocast::audit {
namespace {

const std::uint32_t kShardCounts[] = {2, 4};
const radio::EngineMode kEngines[] = {radio::EngineMode::kScalar,
                                      radio::EngineMode::kBitset};

/// Runs one case at one (engine, shards) point and checks the full audit
/// gate plus invariance against a precomputed reference outcome.
void check_case(const CorpusCase& c, radio::EngineMode engine,
                std::uint32_t shards, const CorpusOutcome& reference,
                const std::string& reference_digest) {
  SCOPED_TRACE(c.name + " engine=" + radio::engine_mode_name(engine) +
               " shards=" + std::to_string(shards));
  const CorpusOutcome out = run_corpus_case(c, engine, shards);
  EXPECT_TRUE(out.delivered) << "audited run failed to deliver";
  EXPECT_TRUE(out.report.clean())
      << out.report.total() << " violations; first: "
      << out.report.violations().front().check << " — "
      << out.report.violations().front().detail;
  EXPECT_TRUE(out.bit_identical)
      << "audited and unaudited runs diverged under sharding";
  EXPECT_TRUE(results_identical(out.audited, reference.audited))
      << "sharded result diverged from the single-shard scalar reference";
  EXPECT_EQ(exp::digest_run(out.audited), reference_digest)
      << "per-trial digest diverged — a manifest pinned at shards=1 would "
         "not reproduce";
}

TEST(ShardCorpus, EveryPinnedCaseIsShardCountInvariant) {
  for (const CorpusCase& c : pinned_corpus()) {
    SCOPED_TRACE(c.name);
    // The reference is the engine+shards combination every historical
    // manifest digest was produced by: scalar, single shard.
    const CorpusOutcome reference = run_corpus_case(c);
    ASSERT_TRUE(reference.report.clean());
    const std::string reference_digest = exp::digest_run(reference.audited);
    for (const radio::EngineMode engine : kEngines) {
      for (const std::uint32_t shards : kShardCounts) {
        check_case(c, engine, shards, reference, reference_digest);
      }
    }
  }
}

TEST(ShardCorpus, ScaledCasesShardTheBitsetEngineForReal) {
  // n = 256 clears the bitset engine's 64-node shard alignment by a wide
  // margin, so these runs execute the sharded bitset sweeps (exact scatter
  // under the auditor) with multiple nonempty shards rather than
  // degrading to one.
  const CorpusCase scaled_cases[] = {
      {.name = "scaled_gnp_lossless",
       .family = "gnp",
       .n = 256,
       .k = 3,
       .placement = core::PlacementMode::kSpreadEven,
       .loss = 0.0,
       .collision_detection = false,
       .coded = true,
       .graph_seed = 0x51a11,
       .placement_seed = 0x51a12,
       .run_seed = 0x51a13},
      {.name = "scaled_bounded_degree_lossy_cd",
       .family = "bounded_degree",
       .n = 256,
       .k = 2,
       .placement = core::PlacementMode::kRandom,
       .loss = 0.03,
       .collision_detection = true,
       .coded = true,
       .graph_seed = 0x51a21,
       .placement_seed = 0x51a22,
       .run_seed = 0x51a23},
  };
  for (const CorpusCase& c : scaled_cases) {
    SCOPED_TRACE(c.name);
    const CorpusOutcome reference = run_corpus_case(c);
    ASSERT_TRUE(reference.report.clean());
    ASSERT_TRUE(reference.delivered);
    const std::string reference_digest = exp::digest_run(reference.audited);
    for (const std::uint32_t shards : {2u, 4u}) {
      check_case(c, radio::EngineMode::kBitset, shards, reference,
                 reference_digest);
    }
  }
}

}  // namespace
}  // namespace radiocast::audit
