// Metamorphic and differential properties of audited end-to-end runs.
//
//  * Node relabeling: applying a graph isomorphism (and permuting the
//    placement with it) must preserve correctness exactly and trace
//    statistics statistically. Exact per-seed round equality is NOT
//    expected — per-node RNG streams are assigned in node-id order by
//    master.split(), so a relabeling reshuffles who draws what — but the
//    distribution of completion rounds is label-free, so corpus means must
//    agree within a band.
//  * Seed independence of correctness: every run seed delivers all
//    packets and audits clean; only timing may vary.
//  * Coded vs uncoded differential: with identical topology, placement
//    and seed, the paper's coded Stage 4 and the uncoded baseline must
//    produce the same delivery set (everything, everywhere) — coding
//    changes time, never the delivered bits.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "audit/model_auditor.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"

namespace radiocast {
namespace {

/// Relabels g by permutation perm (new id = perm[old id]).
graph::Graph relabel(const graph::Graph& g,
                     const std::vector<graph::NodeId>& perm) {
  graph::Graph out(g.num_nodes());
  for (const auto& [u, v] : g.edges()) out.add_edge(perm[u], perm[v]);
  out.finalize();
  return out;
}

/// Permutes a placement with the same node relabeling, rewriting packet
/// ids so origins stay consistent with their new holder.
core::Placement relabel_placement(const core::Placement& placement,
                                  const std::vector<graph::NodeId>& perm) {
  core::Placement out(placement.size());
  for (graph::NodeId v = 0; v < placement.size(); ++v) {
    out[perm[v]] = placement[v];
    for (radio::Packet& p : out[perm[v]]) {
      p.id = radio::make_packet_id(perm[v], radio::packet_seq(p.id));
    }
  }
  return out;
}

core::RunResult run_audited(const graph::Graph& g,
                            const core::Placement& placement,
                            std::uint64_t seed, bool coded = true) {
  core::KBroadcastConfig cfg;
  cfg.know = radio::Knowledge::exact(g);
  cfg.coded = coded;
  audit::ModelAuditor auditor;
  const core::RunResult result =
      core::run_kbroadcast(g, cfg, placement, seed, 0, {}, nullptr, &auditor);
  EXPECT_TRUE(auditor.clean()) << auditor.summary();
  return result;
}

TEST(Metamorphic, SeedIndependenceOfCorrectness) {
  Rng grng(21);
  const graph::Graph g = graph::make_gnp_connected(28, 0.18, grng);
  Rng prng(22);
  const core::Placement placement = core::make_placement(
      g.num_nodes(), 6, core::PlacementMode::kRandom, 16, prng);

  std::vector<std::uint64_t> rounds;
  for (std::uint64_t seed = 100; seed < 108; ++seed) {
    const core::RunResult r = run_audited(g, placement, seed);
    EXPECT_TRUE(r.delivered_all) << "seed " << seed;
    EXPECT_TRUE(r.leader_ok) << "seed " << seed;
    EXPECT_TRUE(r.bfs_ok) << "seed " << seed;
    rounds.push_back(r.total_rounds);
  }
  // Timing varies with the seed, correctness never does; the schedule
  // forces all runs through the same stage skeleton, so rounds stay
  // within a small multiple of each other.
  const auto [lo, hi] = std::minmax_element(rounds.begin(), rounds.end());
  EXPECT_LE(*hi, 3 * *lo);
}

TEST(Metamorphic, NodeRelabelingPreservesCorrectnessAndMeanRounds) {
  Rng grng(23);
  const graph::Graph g = graph::make_gnp_connected(24, 0.2, grng);
  Rng prng(24);
  const core::Placement placement = core::make_placement(
      g.num_nodes(), 5, core::PlacementMode::kSpreadEven, 16, prng);

  // A fixed nontrivial isomorphism: reverse the id space.
  std::vector<graph::NodeId> perm(g.num_nodes());
  std::iota(perm.begin(), perm.end(), 0u);
  std::reverse(perm.begin(), perm.end());
  const graph::Graph g2 = relabel(g, perm);
  const core::Placement placement2 = relabel_placement(placement, perm);

  constexpr int kSeeds = 10;
  double sum = 0, sum2 = 0;
  for (int s = 0; s < kSeeds; ++s) {
    const core::RunResult a = run_audited(g, placement, 300 + s);
    const core::RunResult b = run_audited(g2, placement2, 300 + s);
    // Exact invariants under isomorphism: the run delivers, elects one
    // leader, and builds correct BFS layers on both labelings.
    EXPECT_TRUE(a.delivered_all && b.delivered_all) << "seed " << s;
    EXPECT_TRUE(a.leader_ok && b.leader_ok) << "seed " << s;
    EXPECT_TRUE(a.bfs_ok && b.bfs_ok) << "seed " << s;
    EXPECT_EQ(a.stage1_rounds, b.stage1_rounds);
    EXPECT_EQ(a.stage2_rounds, b.stage2_rounds);
    sum += static_cast<double>(a.total_rounds);
    sum2 += static_cast<double>(b.total_rounds);
  }
  // Statistical invariance: the completion-round distribution is
  // label-free, so corpus means agree within a generous band (they are
  // NOT equal per seed — RNG streams attach to node ids).
  const double mean_a = sum / kSeeds, mean_b = sum2 / kSeeds;
  EXPECT_GT(mean_b, 0.6 * mean_a);
  EXPECT_LT(mean_b, 1.6 * mean_a);
}

TEST(Metamorphic, CodedAndUncodedDeliverTheSameSet) {
  Rng grng(25);
  const graph::Graph g = graph::make_cluster_chain(3, 5);
  Rng prng(26);
  const core::Placement placement = core::make_placement(
      g.num_nodes(), 6, core::PlacementMode::kRandom, 16, prng);

  const core::RunResult coded = run_audited(g, placement, 77, /*coded=*/true);
  const core::RunResult uncoded = run_audited(g, placement, 77, /*coded=*/false);
  // Differential: identical delivery outcome (all k packets, bit-exact,
  // at every node — delivered_all is verified against ground truth), only
  // the round count may differ.
  EXPECT_TRUE(coded.delivered_all);
  EXPECT_TRUE(uncoded.delivered_all);
  EXPECT_EQ(coded.k, uncoded.k);
  EXPECT_EQ(coded.nodes_complete, uncoded.nodes_complete);
}

}  // namespace
}  // namespace radiocast
