// Statistical conformance with Theorem 2.
//
// The paper's bound is rounds = O(k·logΔ + (D+log n)·log n·logΔ). The
// checker measures mean completion rounds over a pinned seed corpus on an
// (n, D, Δ, k) grid chosen so the two terms separate (path: D dominates;
// star/clique-chain: Δ dominates; k swept within each family), fits the
// two-parameter model with least squares (audit::fit_theorem2), and fails
// when the fit leaves the pinned confidence bands:
//  * both coefficients positive and below pinned ceilings (a uniform
//    slowdown inflates them);
//  * relative residuals below pinned bands (a shape regression — e.g. a
//    k·D cross term sneaking into the hot path — cannot be absorbed by
//    the two Theorem-2 features and blows up the residuals).
// The grid runs fully audited: a model violation anywhere fails too.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "audit/model_auditor.hpp"
#include "audit/statfit.hpp"
#include "core/montecarlo.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace radiocast {
namespace {

TEST(TheoremFit, RecoversExactSyntheticCoefficients) {
  std::vector<audit::TheoremPoint> pts;
  for (double k : {4.0, 8.0, 16.0}) {
    for (double d : {3.0, 10.0, 24.0}) {
      audit::TheoremPoint p;
      p.n = 32;
      p.diameter = d;
      p.max_degree = 6;
      p.k = k;
      p.rounds = 3.0 * audit::theorem2_feature_k(p) +
                 5.0 * audit::theorem2_feature_overhead(p);
      pts.push_back(p);
    }
  }
  const audit::TheoremFit fit = audit::fit_theorem2(pts);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.a, 3.0, 1e-6);
  EXPECT_NEAR(fit.b, 5.0, 1e-6);
  EXPECT_LT(fit.max_rel_residual, 1e-6);
}

TEST(TheoremFit, RejectsDegenerateGrids) {
  // One point, and collinear features, are both unfittable.
  EXPECT_FALSE(audit::fit_theorem2({}).ok);
  audit::TheoremPoint p;
  p.n = 32;
  p.diameter = 5;
  p.max_degree = 4;
  p.k = 8;
  p.rounds = 100;
  EXPECT_FALSE(audit::fit_theorem2({p}).ok);
  EXPECT_FALSE(audit::fit_theorem2({p, p, p}).ok);
}

struct GridCell {
  std::string family;
  std::uint32_t n;
  std::uint32_t k;
};

/// Measures mean audited completion rounds for one grid cell.
audit::TheoremPoint measure_cell(const GridCell& cell, int trials,
                                 std::uint64_t seed_base) {
  Rng grng(seed_base);
  // make_named keeps graphs alive only locally; generate then sweep.
  static std::vector<std::unique_ptr<graph::Graph>> keep_alive;
  keep_alive.push_back(
      std::make_unique<graph::Graph>(graph::make_named(cell.family, cell.n, grng)));
  const graph::Graph& g = *keep_alive.back();

  std::vector<audit::ModelAuditor> auditors(trials);
  core::montecarlo::KBroadcastSweep sweep;
  sweep.graph = &g;
  sweep.cfg.know = radio::Knowledge::exact(g);
  sweep.k = cell.k;
  sweep.placement_seed = [seed_base](int t) { return seed_base * 131 + t; };
  sweep.run_seed = [seed_base](int t) { return seed_base * 977 + t; };
  sweep.auditor = [&auditors](int t) { return &auditors[t]; };
  const std::vector<core::RunResult> results =
      core::montecarlo::run_kbroadcast_sweep(sweep, trials);

  double sum = 0;
  for (int t = 0; t < trials; ++t) {
    EXPECT_TRUE(results[t].delivered_all)
        << cell.family << " n=" << cell.n << " k=" << cell.k << " trial " << t;
    EXPECT_TRUE(auditors[t].clean())
        << cell.family << " trial " << t << ": " << auditors[t].summary();
    sum += static_cast<double>(results[t].total_rounds);
  }

  audit::TheoremPoint p;
  p.n = cell.n;
  p.diameter = graph::diameter(g);
  p.max_degree = static_cast<double>(g.max_degree());
  p.k = cell.k;
  p.rounds = sum / trials;
  return p;
}

TEST(TheoremFit, MeasuredGridMatchesTheorem2Shape) {
  // k spans an order of magnitude within each family so the k·logΔ slope
  // is identified independently of the per-family overhead term.
  const std::vector<GridCell> grid = {
      {"path", 24, 4},           {"path", 24, 16},
      {"path", 24, 48},          {"path", 40, 8},
      {"star", 24, 4},           {"star", 24, 16},
      {"star", 24, 48},          {"star", 40, 8},
      {"cluster_chain", 24, 6},  {"cluster_chain", 24, 32},
      {"cluster_chain", 40, 10}, {"gnp", 32, 6},
      {"gnp", 32, 24},
  };
  constexpr int kTrials = 3;

  std::vector<audit::TheoremPoint> pts;
  std::uint64_t seed = 7000;
  for (const GridCell& cell : grid) {
    pts.push_back(measure_cell(cell, kTrials, seed));
    seed += 17;
  }

  const audit::TheoremFit fit = audit::fit_theorem2(pts);
  ASSERT_TRUE(fit.ok);
  RecordProperty("fit_a", std::to_string(fit.a));
  RecordProperty("fit_b", std::to_string(fit.b));
  RecordProperty("mean_rel_residual", std::to_string(fit.mean_rel_residual));
  RecordProperty("max_rel_residual", std::to_string(fit.max_rel_residual));

  // Pinned confidence bands. Calibrated on the frozen seeds above, which
  // measure a ≈ 12.5, b ≈ 93.6, mean residual ≈ 0.19, max ≈ 0.31; bands
  // leave ~2x headroom (see docs/testing.md for the re-pinning
  // procedure). Both coefficients must be positive — each Theorem-2 term
  // demonstrably contributes — and bounded, and the two-feature model
  // must explain the grid.
  EXPECT_GT(fit.a, 0.0) << "k·logΔ term vanished: a=" << fit.a;
  EXPECT_GT(fit.b, 0.0) << "(D+log n)·log n·logΔ term vanished: b=" << fit.b;
  EXPECT_LT(fit.a, 80.0) << "per-packet cost regressed: a=" << fit.a;
  EXPECT_LT(fit.b, 200.0) << "schedule overhead regressed: b=" << fit.b;
  EXPECT_LT(fit.mean_rel_residual, 0.35)
      << "Theorem-2 shape no longer explains the grid";
  EXPECT_LT(fit.max_rel_residual, 0.55)
      << "at least one grid cell diverges from the Theorem-2 shape";
}

TEST(TheoremFit, DetectsAShapeRegression) {
  // Synthesize a Theorem-2-conformant grid, then inject a k·D cross term —
  // the signature of a pipelining bug (groups no longer overlap across
  // layers). The two-feature fit must fail the residual band that the
  // conformant data passes.
  std::vector<audit::TheoremPoint> clean, broken;
  for (double k : {4.0, 8.0, 16.0, 32.0}) {
    for (double d : {2.0, 8.0, 23.0, 39.0}) {
      audit::TheoremPoint p;
      p.n = 40;
      p.diameter = d;
      p.max_degree = d < 10 ? 39.0 : 2.0;  // star-like vs path-like
      p.k = k;
      p.rounds = 20.0 * audit::theorem2_feature_k(p) +
                 8.0 * audit::theorem2_feature_overhead(p);
      clean.push_back(p);
      p.rounds += 25.0 * p.k * p.diameter;  // the regression
      broken.push_back(p);
    }
  }
  const audit::TheoremFit good = audit::fit_theorem2(clean);
  const audit::TheoremFit bad = audit::fit_theorem2(broken);
  ASSERT_TRUE(good.ok && bad.ok);
  EXPECT_LT(good.max_rel_residual, 1e-6);
  EXPECT_GT(bad.max_rel_residual, 0.45)
      << "a k·D cross term must not be absorbable by the Theorem-2 features";
}

}  // namespace
}  // namespace radiocast
