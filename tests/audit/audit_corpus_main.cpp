// Standalone corpus auditor for the CI audit job.
//
// Runs every case of the pinned seed corpus under the ModelAuditor and
// writes all violations (plus per-case context lines) as JSON Lines to the
// path given by --out (default: audit_report.jsonl). Exits 0 iff every
// case was violation-free, delivered all packets, and was bit-identical
// to its unaudited twin; the CI job uploads the report as an artifact on
// failure.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "audit/corpus.hpp"
#include "audit/violation.hpp"

int main(int argc, char** argv) {
  using namespace radiocast;

  std::string out_path = "audit_report.jsonl";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: audit_corpus [--out report.jsonl]\n";
      return 2;
    }
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "audit_corpus: cannot open " << out_path << " for writing\n";
    return 2;
  }

  int failures = 0;
  for (const audit::CorpusCase& c : audit::pinned_corpus()) {
    const audit::CorpusOutcome result = audit::run_corpus_case(c);
    const bool ok =
        result.delivered && result.report.clean() && result.bit_identical;
    out << "{\"case\":\"" << audit::json_escape(c.name) << "\",\"ok\":"
        << (ok ? "true" : "false") << ",\"delivered\":"
        << (result.delivered ? "true" : "false") << ",\"bit_identical\":"
        << (result.bit_identical ? "true" : "false") << ",\"violations\":"
        << result.report.total() << ",\"rounds\":"
        << result.audited.total_rounds << "}\n";
    audit::write_jsonl(out, result.report);
    std::cout << (ok ? "PASS " : "FAIL ") << c.name << " ("
              << result.audited.total_rounds << " rounds, "
              << result.report.total() << " violations)\n";
    if (!ok) ++failures;
  }
  out.close();

  if (failures != 0) {
    std::cerr << "audit_corpus: " << failures << " case(s) failed; report at "
              << out_path << "\n";
    return 1;
  }
  std::cout << "audit_corpus: all " << audit::pinned_corpus().size()
            << " cases clean; report at " << out_path << "\n";
  return 0;
}
