// Seeded-bug detection: each test compiles one deliberate engine or
// protocol bug behind the test-mutation hooks (radio::EngineMutations /
// core::KBroadcastNode::TestMutations) and asserts that the ModelAuditor
// flags it with the expected check. A control run with every mutation off
// audits clean — so these tests pin both directions: the auditor catches
// real model violations and does not cry wolf.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "audit/model_auditor.hpp"
#include "core/protocol.hpp"
#include "core/runner.hpp"
#include "core/schedule.hpp"
#include "graph/generators.hpp"
#include "radio/network.hpp"

namespace radiocast {
namespace {

struct Mutations {
  radio::EngineMutations engine;
  core::KBroadcastNode::TestMutations protocol;
  /// Nodes the protocol mutations apply to (empty = every node).
  std::vector<radio::NodeId> protocol_nodes;
};

/// Mirrors core::run_kbroadcast's wiring, plus the mutation hooks that the
/// production runner (deliberately) does not expose. Completion/timeout is
/// recomputed here exactly as the runner does, so end_run's result checks
/// stay meaningful.
void run_mutated(const graph::Graph& g, const core::Placement& placement,
                 std::uint64_t seed, const Mutations& mut,
                 audit::ModelAuditor& auditor, std::uint64_t max_rounds = 0,
                 std::uint32_t shards = 1) {
  core::KBroadcastConfig cfg;
  cfg.know = radio::Knowledge::exact(g);
  const core::ResolvedConfig rc = core::resolve(cfg);
  std::vector<radio::Packet> truth = core::placement_packets(placement);
  if (max_rounds == 0) max_rounds = core::total_rounds_bound(truth.size(), rc);

  auditor.begin_run(g, rc, truth, {}, /*collision_detection=*/false);

  radio::Network net(g);
  net.set_test_mutations(mut.engine);
  if (shards > 1) net.set_shards(shards);
  net.set_auditor(&auditor);
  Rng master(seed);
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    Rng child = master.split();
    auto node = std::make_unique<core::KBroadcastNode>(rc, v, placement[v], child);
    node->set_audit_sink(&auditor);
    const bool mutate = mut.protocol_nodes.empty() ||
                        std::find(mut.protocol_nodes.begin(),
                                  mut.protocol_nodes.end(),
                                  v) != mut.protocol_nodes.end();
    if (mutate) node->set_test_mutations(mut.protocol);
    net.set_protocol(v, std::move(node));
    if (!placement[v].empty()) net.wake_at_start(v);
  }

  const bool all_done = net.run_until_done(max_rounds);

  core::RunResult result;
  result.n = g.num_nodes();
  result.k = static_cast<std::uint32_t>(truth.size());
  result.timed_out = !all_done;
  result.total_rounds = net.current_round();
  result.counters = net.trace().counters();
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& node = static_cast<const core::KBroadcastNode&>(net.protocol(v));
    std::vector<radio::Packet> got = node.delivered_packets();
    std::sort(got.begin(), got.end(),
              [](const radio::Packet& a, const radio::Packet& b) {
                return a.id < b.id;
              });
    if (got == truth) ++result.nodes_complete;
  }
  result.delivered_all = result.nodes_complete == g.num_nodes();
  auditor.end_run(net, result);
}

bool flagged(const audit::ModelAuditor& auditor, const std::string& check) {
  for (const audit::Violation& v : auditor.report().violations()) {
    if (v.check == check) return true;
  }
  return false;
}

core::Placement dense_placement(const graph::Graph& g, std::uint32_t k,
                                std::uint64_t seed) {
  Rng rng(seed);
  return core::make_placement(g.num_nodes(), k, core::PlacementMode::kSpreadEven,
                              /*payload_bytes=*/16, rng);
}

TEST(AuditorMutations, ControlRunWithAllHooksOffIsClean) {
  Rng rng(5);
  const graph::Graph g = graph::make_gnp_connected(24, 0.2, rng);
  audit::ModelAuditor auditor;
  run_mutated(g, dense_placement(g, 6, 50), /*seed=*/3, Mutations{}, auditor);
  EXPECT_TRUE(auditor.clean()) << auditor.summary();
}

// Seeded engine bug #1: deliver the first message of a collided slot.
// Breaks "collision means silence" — the defining rule of the model.
TEST(AuditorMutations, DeliverOnCollisionIsFlagged) {
  Rng rng(5);
  const graph::Graph g = graph::make_gnp_connected(24, 0.2, rng);
  Mutations mut;
  mut.engine.deliver_on_collision = true;
  audit::ModelAuditor auditor;
  run_mutated(g, dense_placement(g, 6, 50), 3, mut, auditor,
              /*max_rounds=*/20000);
  EXPECT_FALSE(auditor.clean());
  EXPECT_TRUE(flagged(auditor, "radio.deliver_on_collision"))
      << auditor.summary();
}

// Seeded engine bug #2: deliver to a node that is itself transmitting.
// Breaks the half-duplex rule (transmitters hear nothing).
TEST(AuditorMutations, DeliverWhileTransmittingIsFlagged) {
  Rng rng(6);
  const graph::Graph g = graph::make_gnp_connected(24, 0.25, rng);
  Mutations mut;
  mut.engine.deliver_while_transmitting = true;
  audit::ModelAuditor auditor;
  run_mutated(g, dense_placement(g, 8, 51), 4, mut, auditor,
              /*max_rounds=*/20000);
  EXPECT_FALSE(auditor.clean());
  EXPECT_TRUE(flagged(auditor, "radio.deliver_while_transmitting"))
      << auditor.summary();
}

// Seeded engine bug #3: receive without waking. Breaks wake-on-first-
// reception (sleeping nodes must join the protocol when first reached).
TEST(AuditorMutations, SkipWakeOnReceiveIsFlagged) {
  const graph::Graph g = graph::make_path(16);
  Mutations mut;
  mut.engine.skip_wake_on_receive = true;
  audit::ModelAuditor auditor;
  Rng prng(52);
  const core::Placement placement = core::make_placement(
      16, 3, core::PlacementMode::kSingleSource, 16, prng);
  run_mutated(g, placement, 5, mut, auditor, /*max_rounds=*/5000);
  EXPECT_FALSE(auditor.clean());
  EXPECT_TRUE(flagged(auditor, "radio.wake_on_reception")) << auditor.summary();
}

// Seeded engine bug #4 (sharded engines): each shard applies only its own
// transmitters — the round-boundary transmit-set exchange is skipped, so
// cut-edge receptions vanish. The auditor re-derives every slot's outcome
// from the full transmission set, so the missing deliveries surface as
// radio.outcome violations.
TEST(AuditorMutations, ShardSkipFrontierExchangeIsFlagged) {
  Rng rng(7);
  const graph::Graph g = graph::make_gnp_connected(32, 0.2, rng);
  Mutations mut;
  mut.engine.shard_skip_frontier_exchange = true;
  audit::ModelAuditor auditor;
  run_mutated(g, dense_placement(g, 6, 56), 9, mut, auditor,
              /*max_rounds=*/20000, /*shards=*/4);
  EXPECT_FALSE(auditor.clean());
  EXPECT_TRUE(flagged(auditor, "radio.outcome")) << auditor.summary();
}

// Control for bug #4: the same sharded run with the mutation off audits
// clean — sharding by itself must not trip any model check.
TEST(AuditorMutations, ShardedControlRunIsClean) {
  Rng rng(7);
  const graph::Graph g = graph::make_gnp_connected(32, 0.2, rng);
  audit::ModelAuditor auditor;
  run_mutated(g, dense_placement(g, 6, 56), 9, Mutations{}, auditor,
              /*max_rounds=*/0, /*shards=*/4);
  EXPECT_TRUE(auditor.clean()) << auditor.summary();
}

// Seeded protocol bug #1: a relay silently skips its Stage-2 BFS
// transmissions. Downstream nodes never join the tree, so the final BFS
// layers diverge from true graph distances.
TEST(AuditorMutations, SuppressedBfsTransmitIsFlagged) {
  const graph::Graph g = graph::make_path(12);
  Mutations mut;
  mut.protocol.suppress_bfs_transmit = true;
  mut.protocol_nodes = {6};  // cut the path's only BFS route at node 6
  audit::ModelAuditor auditor;
  Rng prng(53);
  core::Placement placement(12);
  // All packets at node 0: node 0 is the unique participant and leader, so
  // BFS flows 0 -> 11 and the cut at node 6 strands nodes 7..11.
  placement[0] = core::make_placement(1, 3, core::PlacementMode::kSingleSource,
                                      16, prng)[0];
  run_mutated(g, placement, 6, mut, auditor, /*max_rounds=*/30000);
  EXPECT_FALSE(auditor.clean());
  EXPECT_TRUE(flagged(auditor, "protocol.bfs_layer")) << auditor.summary();
}

// Seeded protocol bug #2: nodes advance to Stage 4 a few rounds before
// their collection schedule ended (premature stage advance).
TEST(AuditorMutations, EarlyStage4EntryIsFlagged) {
  const graph::Graph g = graph::make_star(16);
  Mutations mut;
  mut.protocol.early_stage4_rounds = 3;
  audit::ModelAuditor auditor;
  run_mutated(g, dense_placement(g, 4, 54), 7, mut, auditor,
              /*max_rounds=*/30000);
  EXPECT_FALSE(auditor.clean());
  EXPECT_TRUE(flagged(auditor, "protocol.stage4_boundary")) << auditor.summary();
}

// Seeded protocol bug #3: every coded transmission's payload has one bit
// flipped, so it is no longer the GF(2) combination its header claims.
TEST(AuditorMutations, CorruptCodedPayloadIsFlagged) {
  const graph::Graph g = graph::make_star(16);
  Mutations mut;
  mut.protocol.corrupt_coded_payload = true;
  audit::ModelAuditor auditor;
  run_mutated(g, dense_placement(g, 4, 55), 8, mut, auditor,
              /*max_rounds=*/30000);
  EXPECT_FALSE(auditor.clean());
  EXPECT_TRUE(flagged(auditor, "delivery.coded_payload")) << auditor.summary();
}

}  // namespace
}  // namespace radiocast
