// PacketTracer cross-check on the pinned audit corpus: every corpus case
// is run untraced, traced (tee'd with a ModelAuditor), and traced again.
// The auditor independently re-derives every reception the tracer consumes,
// so a clean teed run certifies the tracer's event stream; on top of that
// the traced results must be bit-identical to the untraced run (tracing is
// read-only), the tracer's first-hold records must be self-consistent with
// the run result, and the flight log must replay identically.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "audit/corpus.hpp"
#include "audit/model_auditor.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "obs/packet_trace.hpp"

namespace radiocast::audit {
namespace {

using FlightEvent = obs::PacketTracer::FlightEvent;
using Via = obs::PacketTracer::Via;

constexpr std::uint64_t kNever = ~std::uint64_t{0};

/// Index of `id` in the sorted ground truth.
std::uint32_t index_of(const std::vector<radio::Packet>& truth,
                       radio::PacketId id) {
  const auto it = std::lower_bound(
      truth.begin(), truth.end(), id,
      [](const radio::Packet& p, radio::PacketId v) { return p.id < v; });
  EXPECT_TRUE(it != truth.end() && it->id == id);
  return static_cast<std::uint32_t>(it - truth.begin());
}

bool same_flight_logs(const std::vector<FlightEvent>& a,
                      const std::vector<FlightEvent>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].latency != b[i].latency || a[i].packet != b[i].packet ||
        a[i].node != b[i].node || a[i].from != b[i].from ||
        a[i].depth != b[i].depth || a[i].via != b[i].via)
      return false;
  }
  return true;
}

TEST(PacketTraceCorpus, TracerAgreesWithAuditorOnEveryCase) {
  for (const CorpusCase& c : pinned_corpus()) {
    SCOPED_TRACE(c.name);

    // Same recipe as run_corpus_case (audit/corpus.cpp) so the executions
    // are the exact pinned ones CI audits.
    Rng graph_rng(c.graph_seed);
    const graph::Graph g = graph::make_named(c.family, c.n, graph_rng);
    core::KBroadcastConfig cfg;
    cfg.know = radio::Knowledge::exact(g);
    cfg.coded = c.coded;
    Rng placement_rng(c.placement_seed);
    const core::Placement placement = core::make_placement(
        g.num_nodes(), c.k, c.placement, /*payload_bytes=*/16, placement_rng);
    radio::FaultModel faults;
    faults.reception_loss_probability = c.loss;
    faults.seed = c.run_seed ^ 0x5eedf001u;

    const core::RunResult plain =
        core::run_kbroadcast(g, cfg, placement, c.run_seed, /*max_rounds=*/0,
                             faults, /*observer=*/nullptr, /*auditor=*/nullptr,
                             c.collision_detection);

    ModelAuditor auditor;
    obs::PacketTracer tracer;
    const core::RunResult traced =
        core::run_kbroadcast(g, cfg, placement, c.run_seed, /*max_rounds=*/0,
                             faults, /*observer=*/nullptr, &auditor,
                             c.collision_detection, &tracer);

    // The auditor re-derives every reception the tracer consumed; a clean
    // report means the tracer's input stream matches the radio model.
    EXPECT_TRUE(auditor.clean()) << auditor.summary();
    EXPECT_TRUE(results_identical(plain, traced))
        << "tracing perturbed the run (tracer is not read-only?)";

    ASSERT_EQ(tracer.num_packets(), c.k);
    ASSERT_EQ(tracer.num_nodes(), c.n);
    const std::vector<radio::Packet> truth = core::placement_packets(placement);
    ASSERT_EQ(tracer.truth(), truth);

    // Placement origins hold their packets from round 0.
    for (radio::NodeId v = 0; v < c.n; ++v) {
      for (const radio::Packet& p : placement[v]) {
        const std::uint32_t idx = index_of(truth, p.id);
        EXPECT_EQ(tracer.latency(idx, v), 0u);
        EXPECT_EQ(tracer.via(idx, v), Via::kOrigin);
        EXPECT_EQ(tracer.hop_depth(idx, v), 0u);
      }
    }

    // Every first-hold record is consistent with the run's round count.
    std::size_t held_cells = 0;
    for (std::uint32_t p = 0; p < c.k; ++p) {
      for (radio::NodeId v = 0; v < c.n; ++v) {
        const std::uint64_t lat = tracer.latency(p, v);
        if (lat == kNever) {
          EXPECT_FALSE(tracer.held(p, v));
          continue;
        }
        ++held_cells;
        if (tracer.via(p, v) == Via::kOrigin) {
          EXPECT_EQ(lat, 0u);
        } else {
          EXPECT_GE(lat, 1u);
          EXPECT_LE(lat, traced.total_rounds);
          EXPECT_GE(tracer.hop_depth(p, v), 1u);
          EXPECT_LT(tracer.delivered_by(p, v), c.n);
        }
      }
      if (traced.delivered_all) EXPECT_EQ(tracer.undelivered(p), 0u) << "p=" << p;
    }

    // One flight event per held cell (the default cap is far above n*k),
    // in chronological order.
    EXPECT_EQ(tracer.dropped_flight_events(), 0u);
    EXPECT_EQ(tracer.flight_events().size(), held_cells);
    for (std::size_t i = 1; i < tracer.flight_events().size(); ++i) {
      EXPECT_LE(tracer.flight_events()[i - 1].latency,
                tracer.flight_events()[i].latency);
    }

    // Replaying the run (tracer only, no auditor) reproduces the flight
    // log event for event.
    obs::PacketTracer replay;
    const core::RunResult again =
        core::run_kbroadcast(g, cfg, placement, c.run_seed, /*max_rounds=*/0,
                             faults, /*observer=*/nullptr, /*auditor=*/nullptr,
                             c.collision_detection, &replay);
    EXPECT_TRUE(results_identical(plain, again));
    EXPECT_TRUE(same_flight_logs(tracer.flight_events(), replay.flight_events()))
        << "flight log not deterministic";
  }
}

}  // namespace
}  // namespace radiocast::audit
