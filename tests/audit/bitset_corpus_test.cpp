// The pinned audit corpus, executed by the bitset round kernel.
//
// corpus_test.cpp certifies the scalar engine against the ModelAuditor on
// the frozen seed grid; this file runs the exact same cases under
// EngineMode::kBitset and pins three properties per case:
//
//   1. zero model violations (the bit-parallel kernel obeys the radio
//      model on every audited execution),
//   2. audited == unaudited bit-identity within the bitset engine (the
//      auditor stays a pure observer on the exact sub-path), and
//   3. cross-engine result identity: the bitset run's RunResult matches
//      the scalar run's field for field — rounds, stage accounting, and
//      every trace counter. The engines are interchangeable on the whole
//      corpus, which is what lets `engine: bitset` scenarios cite scalar
//      history.
#include <gtest/gtest.h>

#include "audit/corpus.hpp"

namespace radiocast::audit {
namespace {

class BitsetCorpusTest : public ::testing::TestWithParam<CorpusCase> {};

TEST_P(BitsetCorpusTest, BitsetEngineClearsCaseAndMatchesScalar) {
  const CorpusCase& c = GetParam();

  const CorpusOutcome bitset = run_corpus_case(c, radio::EngineMode::kBitset);
  EXPECT_TRUE(bitset.report.clean())
      << c.name << ": " << bitset.report.total() << " violations under bitset";
  EXPECT_TRUE(bitset.bit_identical)
      << c.name << ": audited bitset run diverged from unaudited";
  EXPECT_TRUE(bitset.delivered) << c.name << ": bitset run did not deliver";

  const CorpusOutcome scalar = run_corpus_case(c, radio::EngineMode::kScalar);
  EXPECT_TRUE(results_identical(bitset.audited, scalar.audited))
      << c.name << ": bitset and scalar audited results differ";
  EXPECT_TRUE(results_identical(bitset.unaudited, scalar.unaudited))
      << c.name << ": bitset and scalar unaudited results differ";
}

INSTANTIATE_TEST_SUITE_P(PinnedCorpus, BitsetCorpusTest,
                         ::testing::ValuesIn(pinned_corpus()),
                         [](const ::testing::TestParamInfo<CorpusCase>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace radiocast::audit
