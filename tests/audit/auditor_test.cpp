// Unit and integration tests of the ModelAuditor plumbing: clean runs
// audit clean, auditing is wired through run_kbroadcast and the Monte
// Carlo sweep driver, auditors are reusable across runs, and the network
// attachment rules fail loudly when misused.
#include <gtest/gtest.h>

#include "audit/corpus.hpp"
#include "audit/model_auditor.hpp"
#include "core/montecarlo.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "radio/network.hpp"

namespace radiocast {
namespace {

core::Placement placement_for(const graph::Graph& g, std::uint32_t k,
                              std::uint64_t seed) {
  Rng rng(seed);
  return core::make_placement(g.num_nodes(), k, core::PlacementMode::kRandom,
                              /*payload_bytes=*/16, rng);
}

TEST(ModelAuditor, CleanRunAuditsClean) {
  const graph::Graph g = graph::make_path(16);
  core::KBroadcastConfig cfg;
  cfg.know = radio::Knowledge::exact(g);
  const core::Placement placement = placement_for(g, 4, 42);

  audit::ModelAuditor auditor;
  const core::RunResult result =
      core::run_kbroadcast(g, cfg, placement, /*seed=*/7, /*max_rounds=*/0, {},
                           /*observer=*/nullptr, &auditor);
  EXPECT_TRUE(result.delivered_all);
  EXPECT_TRUE(auditor.clean()) << auditor.summary();
  EXPECT_EQ(auditor.summary(), "clean");
}

TEST(ModelAuditor, AuditedRunIsBitIdenticalToUnaudited) {
  const graph::Graph g = graph::make_star(20);
  core::KBroadcastConfig cfg;
  cfg.know = radio::Knowledge::exact(g);
  const core::Placement placement = placement_for(g, 5, 43);

  audit::ModelAuditor auditor;
  const core::RunResult audited =
      core::run_kbroadcast(g, cfg, placement, 9, 0, {}, nullptr, &auditor);
  const core::RunResult plain = core::run_kbroadcast(g, cfg, placement, 9);
  EXPECT_TRUE(auditor.clean()) << auditor.summary();
  EXPECT_TRUE(audit::results_identical(audited, plain));
}

TEST(ModelAuditor, ReusableAcrossSequentialRuns) {
  const graph::Graph g = graph::make_cycle(12);
  core::KBroadcastConfig cfg;
  cfg.know = radio::Knowledge::exact(g);
  audit::ModelAuditor auditor;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const core::Placement placement = placement_for(g, 3, seed);
    const core::RunResult result =
        core::run_kbroadcast(g, cfg, placement, seed, 0, {}, nullptr, &auditor);
    EXPECT_TRUE(result.delivered_all) << "seed " << seed;
    EXPECT_TRUE(auditor.clean()) << "seed " << seed << ": " << auditor.summary();
  }
}

TEST(ModelAuditor, AuditsLossyAndCollisionDetectionRuns) {
  const graph::Graph g = graph::make_grid(5, 5);
  core::KBroadcastConfig cfg;
  cfg.know = radio::Knowledge::exact(g);
  const core::Placement placement = placement_for(g, 6, 44);
  radio::FaultModel faults;
  faults.reception_loss_probability = 0.05;

  audit::ModelAuditor auditor;
  const core::RunResult result = core::run_kbroadcast(
      g, cfg, placement, 11, 0, faults, nullptr, &auditor,
      /*collision_detection=*/true);
  EXPECT_TRUE(result.delivered_all);
  EXPECT_GT(result.counters.fault_drops, 0u);
  EXPECT_TRUE(auditor.clean()) << auditor.summary();
}

TEST(ModelAuditor, MonteCarloSweepWiresPerTrialAuditors) {
  const graph::Graph g = graph::make_cluster_chain(4, 5);
  constexpr int kTrials = 4;
  std::vector<audit::ModelAuditor> auditors(kTrials);

  core::montecarlo::KBroadcastSweep sweep;
  sweep.graph = &g;
  sweep.cfg.know = radio::Knowledge::exact(g);
  sweep.k = 5;
  sweep.placement_seed = [](int t) { return 1000 + t; };
  sweep.run_seed = [](int t) { return 2000 + t; };
  sweep.auditor = [&auditors](int t) { return &auditors[t]; };

  const std::vector<core::RunResult> audited =
      core::montecarlo::run_kbroadcast_sweep(sweep, kTrials);
  sweep.auditor = nullptr;
  const std::vector<core::RunResult> plain =
      core::montecarlo::run_kbroadcast_sweep(sweep, kTrials);

  ASSERT_EQ(audited.size(), plain.size());
  for (int t = 0; t < kTrials; ++t) {
    EXPECT_TRUE(audited[t].delivered_all) << "trial " << t;
    EXPECT_TRUE(auditors[t].clean())
        << "trial " << t << ": " << auditors[t].summary();
    EXPECT_TRUE(audit::results_identical(audited[t], plain[t])) << "trial " << t;
  }
}

TEST(ModelAuditor, NetworkAttachmentRules) {
  const graph::Graph g = graph::make_path(2);
  radio::Network net(g);
  EXPECT_EQ(net.auditor(), nullptr);

  audit::ModelAuditor auditor;
  net.set_auditor(&auditor);
  EXPECT_EQ(net.auditor(), &auditor);
  net.set_auditor(nullptr);
  EXPECT_EQ(net.auditor(), nullptr);
}

}  // namespace
}  // namespace radiocast
