// Differential gate for the memory-locality overhaul: the pinned audit
// corpus replayed against digests captured *before* the engine's hot data
// structures were rebuilt (CSR topology, protocol slab, payload arena,
// merged reach slots). Every digest field is a deterministic function of
// the simulation semantics — rounds, completion, trace counters, bit
// accounting, verification flags — so any layout change that perturbs an
// RNG draw, a callback order, or a delivery outcome shows up as a field
// mismatch on at least one case.
//
// The digests are append-only: when a corpus case is added, capture its
// digest from a trusted build and add a row here. They must NEVER be
// re-captured to paper over a diff — a mismatch means the engine's
// observable behavior changed, which is exactly what this test exists to
// catch.
#include <gtest/gtest.h>

#include <cstdint>

#include "audit/corpus.hpp"

namespace radiocast::audit {
namespace {

/// One corpus case's expected outcome, captured from the pre-overhaul
/// engine (adjacency-list Graph, per-node unique_ptr protocols, per-round
/// heap payloads) at commit c081a0a.
struct PinnedDigest {
  const char* name;
  std::uint64_t total_rounds;
  std::uint32_t nodes_complete;
  std::uint64_t transmissions;
  std::uint64_t deliveries;
  std::uint64_t collision_slots;
  std::uint64_t deaf_slots;
  std::uint64_t fault_drops;
  std::uint64_t bits_transmitted;
  std::uint64_t bits_delivered;
  bool delivered_all;
  bool leader_ok;
  bool bfs_ok;
  std::uint32_t collection_phases;
  std::uint64_t final_estimate;
};

// clang-format off
constexpr PinnedDigest kPreOverhaulDigests[] = {
    {"path_random", 15652ull, 24, 7998ull, 6425ull, 1472ull, 4608ull, 0ull, 319922ull, 620805ull, true, true, true, 1, 140ull},
    {"path_random_cd", 15653ull, 24, 7856ull, 6264ull, 1451ull, 4567ull, 0ull, 306936ull, 594111ull, true, true, true, 1, 140ull},
    {"star_single_source", 10704ull, 32, 8609ull, 6647ull, 874ull, 2307ull, 0ull, 507300ull, 512593ull, true, true, true, 1, 35ull},
    {"star_single_source_lossy", 10714ull, 32, 8473ull, 6362ull, 845ull, 2257ull, 203ull, 510603ull, 506198ull, true, true, true, 1, 35ull},
    {"grid_spread", 16251ull, 36, 15736ull, 16296ull, 9093ull, 9223ull, 0ull, 941197ull, 1970046ull, true, true, true, 1, 96ull},
    {"grid_spread_lossy_cd", 16249ull, 36, 15649ull, 15962ull, 8893ull, 9213ull, 478ull, 911283ull, 1907493ull, true, true, true, 1, 96ull},
    {"cluster_chain_random", 11851ull, 30, 9593ull, 11604ull, 14061ull, 8366ull, 0ull, 721144ull, 1264484ull, true, true, true, 1, 50ull},
    {"cluster_chain_random_lossy", 11854ull, 30, 9652ull, 11708ull, 14392ull, 8375ull, 353ull, 692769ull, 1301838ull, true, true, true, 1, 50ull},
    {"gnp_random", 15245ull, 40, 16964ull, 24256ull, 20214ull, 12671ull, 0ull, 880180ull, 2589032ull, true, true, true, 1, 60ull},
    {"gnp_spread_cd", 15008ull, 40, 13413ull, 20383ull, 16196ull, 9875ull, 0ull, 837114ull, 2357551ull, true, true, true, 1, 60ull},
    {"tree_single_source_lossy", 11838ull, 28, 4330ull, 4918ull, 856ull, 1068ull, 143ull, 532205ull, 814642ull, true, true, true, 1, 70ull},
    {"path_uncoded", 13543ull, 20, 3351ull, 2817ull, 534ull, 1882ull, 0ull, 167978ull, 315874ull, true, true, true, 1, 120ull},
    {"star_uncoded_lossy", 10691ull, 24, 6508ull, 5601ull, 737ull, 1909ull, 196ull, 379605ull, 415223ull, true, true, true, 1, 35ull},
};
// clang-format on

const PinnedDigest* find_digest(const std::string& name) {
  for (const PinnedDigest& d : kPreOverhaulDigests) {
    if (name == d.name) return &d;
  }
  return nullptr;
}

TEST(EngineDifferential, EveryCorpusCaseHasAPinnedDigest) {
  // Append-only discipline: a new corpus case must come with a digest row
  // (captured from a trusted build), and digests must not outlive their
  // cases.
  const auto& corpus = pinned_corpus();
  EXPECT_EQ(corpus.size(), std::size(kPreOverhaulDigests));
  for (const CorpusCase& c : corpus) {
    EXPECT_NE(find_digest(c.name), nullptr) << "no pinned digest for " << c.name;
  }
}

TEST(EngineDifferential, CorpusReplayMatchesPreOverhaulDigests) {
  for (const CorpusCase& c : pinned_corpus()) {
    SCOPED_TRACE(c.name);
    const PinnedDigest* d = find_digest(c.name);
    ASSERT_NE(d, nullptr);

    const CorpusOutcome out = run_corpus_case(c);
    const core::RunResult& r = out.unaudited;
    const radio::TraceCounters& tc = r.counters;

    EXPECT_EQ(r.total_rounds, d->total_rounds);
    EXPECT_EQ(r.nodes_complete, d->nodes_complete);
    EXPECT_EQ(tc.transmissions, d->transmissions);
    EXPECT_EQ(tc.deliveries, d->deliveries);
    EXPECT_EQ(tc.collision_slots, d->collision_slots);
    EXPECT_EQ(tc.deaf_slots, d->deaf_slots);
    EXPECT_EQ(tc.fault_drops, d->fault_drops);
    EXPECT_EQ(tc.bits_transmitted, d->bits_transmitted);
    EXPECT_EQ(tc.bits_delivered, d->bits_delivered);
    EXPECT_EQ(r.delivered_all, d->delivered_all);
    EXPECT_EQ(r.leader_ok, d->leader_ok);
    EXPECT_EQ(r.bfs_ok, d->bfs_ok);
    EXPECT_EQ(r.collection_phases, d->collection_phases);
    EXPECT_EQ(r.final_estimate, d->final_estimate);

    // The audited twin must also match — replaying with the auditor
    // attached exercises the observer-independence of the new layouts.
    EXPECT_TRUE(out.bit_identical);
    EXPECT_TRUE(results_identical(out.audited, out.unaudited));
  }
}

}  // namespace
}  // namespace radiocast::audit
