#include "gf2/solver.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gf2/coding.hpp"
#include "gf2/matrix.hpp"

namespace radiocast::gf2 {
namespace {

Payload make_payload(Rng& rng, std::size_t bytes) {
  Payload p(bytes);
  for (auto& b : p) b = static_cast<std::uint8_t>(rng() & 0xff);
  return p;
}

TEST(XorInto, BasicAndPadding) {
  Payload a = {0x0f, 0xf0};
  Payload b = {0xff};
  xor_into(a, b);
  EXPECT_EQ(a, (Payload{0xf0, 0xf0}));
  Payload c = {0x01};
  Payload d = {0x00, 0xab};
  xor_into(c, d);
  EXPECT_EQ(c, (Payload{0x01, 0xab}));
}

TEST(XorInto, SelfInverse) {
  Rng rng(1);
  Payload a = make_payload(rng, 16);
  const Payload orig = a;
  Payload b = make_payload(rng, 16);
  xor_into(a, b);
  xor_into(a, b);
  EXPECT_EQ(a, orig);
}

TEST(IncrementalDecoder, UnitRowsDecodeDirectly) {
  Rng rng(2);
  const std::size_t w = 6;
  std::vector<Payload> packets;
  for (std::size_t i = 0; i < w; ++i) packets.push_back(make_payload(rng, 8));

  IncrementalDecoder dec(w);
  EXPECT_FALSE(dec.complete());
  for (std::size_t i = 0; i < w; ++i) {
    CodedRow row{BitVec::unit(w, i), packets[i]};
    EXPECT_TRUE(dec.add_row(row));
    EXPECT_EQ(dec.rank(), i + 1);
  }
  EXPECT_TRUE(dec.complete());
  for (std::size_t i = 0; i < w; ++i) EXPECT_EQ(dec.packet(i), packets[i]);
}

TEST(IncrementalDecoder, RedundantRowsDoNotAdvanceRank) {
  const std::size_t w = 4;
  IncrementalDecoder dec(w);
  CodedRow r0{BitVec::from_bits(w, {0, 1}), {0xaa}};
  EXPECT_TRUE(dec.add_row(r0));
  EXPECT_FALSE(dec.add_row(r0));  // duplicate
  CodedRow zero{BitVec(w), {}};
  EXPECT_FALSE(dec.add_row(zero));  // all-zero subset
  EXPECT_EQ(dec.rank(), 1u);
  EXPECT_EQ(dec.rows_seen(), 3u);
  EXPECT_EQ(dec.redundant_rows(), 2u);
}

TEST(IncrementalDecoder, RandomCodedRoundTrip) {
  Rng rng(3);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t w = 1 + rng.next_below(12);
    std::vector<Payload> packets;
    for (std::size_t i = 0; i < w; ++i) packets.push_back(make_payload(rng, 16));
    GroupEncoder enc(packets);

    IncrementalDecoder dec(w);
    std::size_t rows = 0;
    while (!dec.complete()) {
      dec.add_row(enc.encode_random(rng));
      ASSERT_LT(++rows, 2000u);  // safety: decoding must terminate
    }
    for (std::size_t i = 0; i < w; ++i) EXPECT_EQ(dec.packet(i), packets[i]);
  }
}

TEST(IncrementalDecoder, MixedUnitAndCodedRows) {
  Rng rng(4);
  const std::size_t w = 8;
  std::vector<Payload> packets;
  for (std::size_t i = 0; i < w; ++i) packets.push_back(make_payload(rng, 4));
  GroupEncoder enc(packets);

  IncrementalDecoder dec(w);
  // Half the packets arrive as plain (unit) rows, the rest as random
  // combinations — exactly what a distance-1 node relaying to distance-2
  // neighbors produces.
  for (std::size_t i = 0; i < w / 2; ++i) {
    dec.add_row(CodedRow{BitVec::unit(w, i), packets[i]});
  }
  int safety = 0;
  while (!dec.complete()) {
    dec.add_row(enc.encode_random(rng));
    ASSERT_LT(++safety, 1000);
  }
  EXPECT_EQ(dec.packets().size(), w);
  for (std::size_t i = 0; i < w; ++i) EXPECT_EQ(dec.packet(i), packets[i]);
}

TEST(IncrementalDecoder, MatchesBatchSolver) {
  // The incremental decoder and the batch Matrix::solve agree on which row
  // sets are decodable.
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t w = 5;
    std::vector<Payload> packets;
    for (std::size_t i = 0; i < w; ++i) packets.push_back(make_payload(rng, 4));
    GroupEncoder enc(packets);

    const std::size_t rows = 3 + rng.next_below(6);
    Matrix m(0, w);
    IncrementalDecoder dec(w);
    for (std::size_t r = 0; r < rows; ++r) {
      const BitVec coeffs = BitVec::random(w, rng);
      m.append_row(coeffs);
      dec.add_row(enc.encode(coeffs));
    }
    EXPECT_EQ(dec.rank(), m.rank());
    EXPECT_EQ(dec.complete(), m.rank() == w);
  }
}

TEST(IncrementalDecoder, ExpectedOverheadIsSmall) {
  // Random GF(2) coding needs ~w + 2 rows on average (sum of 2^-j tail).
  Rng rng(6);
  const std::size_t w = 16;
  std::size_t total_rows = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    std::vector<Payload> packets;
    for (std::size_t i = 0; i < w; ++i) packets.push_back(make_payload(rng, 2));
    GroupEncoder enc(packets);
    IncrementalDecoder dec(w);
    while (!dec.complete()) dec.add_row(enc.encode_random(rng));
    total_rows += dec.rows_seen();
  }
  const double avg = static_cast<double>(total_rows) / trials;
  EXPECT_LT(avg, w + 4.0);
  EXPECT_GE(avg, static_cast<double>(w));
}

TEST(GroupEncoder, EncodeMatchesManualXor) {
  Rng rng(7);
  std::vector<Payload> packets = {make_payload(rng, 8), make_payload(rng, 8),
                                  make_payload(rng, 8)};
  GroupEncoder enc(packets);
  const BitVec coeffs = BitVec::from_bits(3, {0, 2});
  const CodedRow row = enc.encode(coeffs);
  Payload expected = packets[0];
  xor_into(expected, packets[2]);
  EXPECT_EQ(row.payload, expected);
  EXPECT_EQ(row.coeffs, coeffs);
}

TEST(GroupEncoder, DecodesToHelper) {
  Rng rng(8);
  std::vector<Payload> packets = {make_payload(rng, 8), make_payload(rng, 8)};
  GroupEncoder enc(packets);
  std::vector<CodedRow> rows;
  rows.push_back(enc.encode(BitVec::from_bits(2, {0})));
  rows.push_back(enc.encode(BitVec::from_bits(2, {0, 1})));
  EXPECT_TRUE(decodes_to(2, rows, packets));
  rows.pop_back();
  EXPECT_FALSE(decodes_to(2, rows, packets));
}

}  // namespace
}  // namespace radiocast::gf2
