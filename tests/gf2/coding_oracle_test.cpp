// Differential oracle for the fast coding path.
//
// The table-driven GroupEncoder (method of four Russians) and the packed
// IncrementalDecoder (uint64 coefficient masks, batched payload
// absorption) both promise byte-identity with the naive definitions: an
// encode is the plain XOR of the selected packets, a decode recovers
// exactly the original group. This file pins those promises against
// independent reference implementations that share no kernel code with
// src/gf2 — plain byte loops only — across the width spectrum the packed
// path branches on (1, partial chunk, full chunk, word boundary, BitVec
// fallback), ragged payload lengths, the all-zero subset, and redundant
// row streams.
#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gf2/coding.hpp"
#include "gf2/solver.hpp"

namespace radiocast::gf2 {
namespace {

// --- reference implementations (no gf2 kernels) -----------------------

// Zero-extending XOR with plain byte loops.
void ref_xor_into(Payload& dst, const Payload& src) {
  if (src.size() > dst.size()) dst.resize(src.size(), 0);
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] ^= src[i];
}

// The definition the paper gives: the coded payload is the XOR of the
// packets selected by the coefficient bits.
Payload ref_encode(const std::vector<Payload>& packets, const BitVec& coeffs) {
  Payload out;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    if (coeffs.get(i)) ref_xor_into(out, packets[i]);
  }
  return out;
}

// Offline Gaussian elimination over the full row list (no incremental
// structure shared with IncrementalDecoder). Returns the solved packets,
// or an empty vector if the rows do not reach full rank.
std::vector<Payload> ref_solve(std::size_t width, std::vector<BitVec> coeffs,
                               std::vector<Payload> payloads) {
  std::vector<std::size_t> pivot_row(width, coeffs.size());
  for (std::size_t r = 0; r < coeffs.size(); ++r) {
    for (std::size_t c = 0; c < width; ++c) {
      if (!coeffs[r].get(c)) continue;
      if (pivot_row[c] == coeffs.size()) {
        pivot_row[c] = r;
        break;
      }
      coeffs[r] ^= coeffs[pivot_row[c]];
      ref_xor_into(payloads[r], payloads[pivot_row[c]]);
    }
  }
  for (std::size_t c = 0; c < width; ++c) {
    if (pivot_row[c] == coeffs.size()) return {};
  }
  // Back-substitute (columns high to low).
  for (std::size_t c = width; c-- > 0;) {
    const std::size_t pr = pivot_row[c];
    for (std::size_t cc = c + 1; cc < width; ++cc) {
      if (coeffs[pr].get(cc)) {
        coeffs[pr] ^= coeffs[pivot_row[cc]];
        ref_xor_into(payloads[pr], payloads[pivot_row[cc]]);
      }
    }
  }
  std::vector<Payload> out;
  for (std::size_t c = 0; c < width; ++c) out.push_back(payloads[pivot_row[c]]);
  return out;
}

// Payloads compare equal modulo trailing zero padding (XOR arithmetic may
// grow a sum to the longest operand).
bool same_modulo_padding(const Payload& a, const Payload& b) {
  const std::size_t common = std::min(a.size(), b.size());
  if (!std::equal(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(common), b.begin())) {
    return false;
  }
  const Payload& longer = a.size() >= b.size() ? a : b;
  return std::all_of(longer.begin() + static_cast<std::ptrdiff_t>(common), longer.end(),
                     [](std::uint8_t x) { return x == 0; });
}

// Group with ragged payload lengths (cycling through a few sizes,
// including empty) so the zero-extension rules are exercised everywhere.
std::vector<Payload> make_group(std::size_t width, Rng& rng) {
  static constexpr std::size_t kSizes[] = {24, 7, 0, 65, 24, 1, 24};
  std::vector<Payload> packets;
  for (std::size_t i = 0; i < width; ++i) {
    Payload p(kSizes[i % std::size(kSizes)]);
    for (auto& b : p) b = static_cast<std::uint8_t>(rng() & 0xff);
    packets.push_back(std::move(p));
  }
  return packets;
}

class CodingOracle : public ::testing::TestWithParam<std::size_t> {};

// Every subset drawn by encode / encode_into / encode_word_into matches
// the naive XOR byte for byte, including the all-zero subset.
TEST_P(CodingOracle, TableEncoderMatchesNaiveXor) {
  const std::size_t width = GetParam();
  Rng rng(0xE0 + width);
  const std::vector<Payload> packets = make_group(width, rng);
  GroupEncoder enc(packets);
  std::vector<BitVec> subsets;
  subsets.push_back(BitVec(width));  // all-zero: encodes to the empty sum
  subsets.push_back(BitVec::from_bits(width, [&] {
    std::vector<std::size_t> all(width);
    for (std::size_t i = 0; i < width; ++i) all[i] = i;
    return all;
  }()));
  for (std::size_t i = 0; i < width; ++i) subsets.push_back(BitVec::unit(width, i));
  for (int i = 0; i < 200; ++i) subsets.push_back(BitVec::random(width, rng));
  for (const BitVec& coeffs : subsets) {
    const Payload want = ref_encode(packets, coeffs);
    EXPECT_EQ(enc.encode(coeffs).payload, want);
    Payload out(37, 0xAA);  // stale recycled contents must be overwritten
    enc.encode_into(coeffs, out);
    EXPECT_EQ(out, want);
    if (width <= 64) {
      Payload out2(5, 0x55);
      enc.encode_word_into(coeffs.to_word(), out2);
      EXPECT_EQ(out2, want);
    }
  }
}

// encode_random_word_into consumes the identical RNG draw and produces the
// identical bytes as encode_random from the same stream position.
TEST_P(CodingOracle, RandomWordPathMatchesRandomBitVecPath) {
  const std::size_t width = GetParam();
  if (width > 64) GTEST_SKIP() << "word path is width <= 64 only";
  Rng rng(0xF0 + width);
  const std::vector<Payload> packets = make_group(width, rng);
  GroupEncoder enc(packets);
  for (int i = 0; i < 100; ++i) {
    Rng a(9000 + i), b(9000 + i);
    const CodedRow row = enc.encode_random(a);
    Payload out;
    const std::uint64_t coeffs = enc.encode_random_word_into(b, out);
    EXPECT_EQ(coeffs, row.coeffs.to_word());
    EXPECT_EQ(out, row.payload);
    EXPECT_EQ(a(), b()) << "RNG streams diverged";
  }
}

// A redundant-laden row stream decodes (via add_row, which forwards to the
// packed path for width <= 64) to exactly what offline Gaussian
// elimination says, which is the original group.
TEST_P(CodingOracle, DecoderMatchesOfflineEliminationAndGroup) {
  const std::size_t width = GetParam();
  Rng rng(0xD0 + width);
  const std::vector<Payload> packets = make_group(width, rng);
  GroupEncoder enc(packets);

  std::vector<BitVec> coeffs;
  std::vector<Payload> payloads;
  IncrementalDecoder dec(width);
  std::size_t safety = 0;
  while (!dec.complete()) {
    CodedRow row = enc.encode_random(rng);
    coeffs.push_back(row.coeffs);
    payloads.push_back(row.payload);
    dec.add_row(row);
    // Duplicate every third row: guaranteed-redundant input.
    if (coeffs.size() % 3 == 0) dec.add_row(row);
    ASSERT_LT(++safety, 10000u);
  }
  EXPECT_EQ(dec.rows_seen() - dec.redundant_rows(), width);

  const std::vector<Payload> want = ref_solve(width, coeffs, payloads);
  ASSERT_EQ(want.size(), width) << "reference says rows were not full rank";
  for (std::size_t i = 0; i < width; ++i) {
    EXPECT_TRUE(same_modulo_padding(dec.packet(i), want[i])) << "packet " << i;
    EXPECT_TRUE(same_modulo_padding(dec.packet(i), packets[i])) << "packet " << i;
  }
}

// The packed entry point proper: rows fed as (uint64, buffer) with
// arena-style recycling. Redundant rows must hand their buffer back
// untouched-by-ownership, and recycled buffers full of stale bytes must
// never leak into decoded output.
TEST_P(CodingOracle, PackedRowsWithRecycledBuffersDecodeCleanly) {
  const std::size_t width = GetParam();
  if (width > 64) GTEST_SKIP() << "packed path is width <= 64 only";
  Rng rng(0xC0 + width);
  const std::vector<Payload> packets = make_group(width, rng);
  GroupEncoder enc(packets);

  std::vector<Payload> pool;
  IncrementalDecoder dec(width);
  std::size_t safety = 0;
  std::size_t redundant_returns = 0;
  while (!dec.complete()) {
    Payload buf;
    if (!pool.empty()) {
      buf = std::move(pool.back());
      pool.pop_back();
      // Poison the recycled buffer: acquire-then-overwrite must erase it.
      buf.assign(buf.capacity(), 0xEE);
    }
    const std::uint64_t coeffs = enc.encode_random_word_into(rng, buf);
    if (!dec.add_row_packed(coeffs, buf)) {
      ++redundant_returns;
      pool.push_back(std::move(buf));  // buffer stays with the caller
    }
    ASSERT_LT(++safety, 10000u);
  }
  EXPECT_EQ(redundant_returns, dec.redundant_rows());

  std::vector<Payload> got = dec.take_packets();
  ASSERT_EQ(got.size(), width);
  for (std::size_t i = 0; i < width; ++i) {
    EXPECT_TRUE(same_modulo_padding(got[i], packets[i])) << "packet " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, CodingOracle,
                         ::testing::Values<std::size_t>(1, 3, 4, 15, 16, 33, 64, 65));

// take_packets drains the decoder once; the buffers it returns are safe to
// recycle into later decoders without any byte bleeding through.
TEST(CodingOracleRecycle, DrainedBuffersCarryNoBytesAcrossGroups) {
  constexpr std::size_t kWidth = 16;
  Rng rng(0xAB);
  std::vector<Payload> pool;
  for (int run = 0; run < 4; ++run) {
    std::vector<Payload> packets;
    for (std::size_t i = 0; i < kWidth; ++i) {
      Payload p(48);
      for (auto& b : p) b = static_cast<std::uint8_t>(rng() & 0xff);
      packets.push_back(std::move(p));
    }
    GroupEncoder enc(packets);
    IncrementalDecoder dec(kWidth);
    while (!dec.complete()) {
      Payload buf;
      if (!pool.empty()) {
        buf = std::move(pool.back());
        pool.pop_back();
      }
      const std::uint64_t coeffs = enc.encode_random_word_into(rng, buf);
      if (!dec.add_row_packed(coeffs, buf)) pool.push_back(std::move(buf));
    }
    std::vector<Payload> got = dec.take_packets();
    for (std::size_t i = 0; i < kWidth; ++i) {
      EXPECT_EQ(got[i], packets[i]) << "run " << run << " packet " << i;
    }
    // Recycle everything the decoder handed back, as the round loop does.
    for (Payload& p : got) pool.push_back(std::move(p));
  }
}

}  // namespace
}  // namespace radiocast::gf2
