#include "gf2/bitvec.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace radiocast::gf2 {
namespace {

TEST(BitVec, ZeroInitialized) {
  BitVec v(100);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_TRUE(v.is_zero());
  EXPECT_EQ(v.popcount(), 0u);
  EXPECT_EQ(v.lowest_set_bit(), 100u);
  EXPECT_EQ(v.highest_set_bit(), 100u);
}

TEST(BitVec, SetGetFlip) {
  BitVec v(130);
  v.set(0, true);
  v.set(64, true);
  v.set(129, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(129));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.popcount(), 3u);
  v.flip(64);
  EXPECT_FALSE(v.get(64));
  EXPECT_EQ(v.popcount(), 2u);
  v.set(0, false);
  EXPECT_FALSE(v.get(0));
}

TEST(BitVec, LowestHighestSetBit) {
  BitVec v(200);
  v.set(70, true);
  v.set(150, true);
  EXPECT_EQ(v.lowest_set_bit(), 70u);
  EXPECT_EQ(v.highest_set_bit(), 150u);
}

TEST(BitVec, XorIsGroupAddition) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    BitVec a = BitVec::random(97, rng);
    BitVec b = BitVec::random(97, rng);
    BitVec c = BitVec::random(97, rng);
    // Commutative, associative, self-inverse, identity.
    EXPECT_EQ(a ^ b, b ^ a);
    EXPECT_EQ((a ^ b) ^ c, a ^ (b ^ c));
    EXPECT_TRUE((a ^ a).is_zero());
    EXPECT_EQ(a ^ BitVec(97), a);
  }
}

TEST(BitVec, OnesRoundTrip) {
  BitVec v = BitVec::from_bits(50, {3, 17, 49});
  const auto ones = v.ones();
  ASSERT_EQ(ones.size(), 3u);
  EXPECT_EQ(ones[0], 3u);
  EXPECT_EQ(ones[1], 17u);
  EXPECT_EQ(ones[2], 49u);
}

TEST(BitVec, DotProduct) {
  BitVec a = BitVec::from_bits(10, {1, 3, 5});
  BitVec b = BitVec::from_bits(10, {3, 5, 7});
  EXPECT_FALSE(a.dot(b));  // overlap {3,5}: parity 0
  BitVec c = BitVec::from_bits(10, {1});
  EXPECT_TRUE(a.dot(c));
}

TEST(BitVec, UnitVector) {
  BitVec e = BitVec::unit(8, 5);
  EXPECT_EQ(e.popcount(), 1u);
  EXPECT_TRUE(e.get(5));
  EXPECT_EQ(e.lowest_set_bit(), 5u);
}

TEST(BitVec, WordRoundTrip) {
  Rng rng(2);
  for (std::size_t size : {1u, 5u, 31u, 32u, 63u, 64u}) {
    BitVec v = BitVec::random(size, rng);
    const std::uint64_t w = v.to_word();
    EXPECT_EQ(BitVec::from_word(size, w), v);
  }
}

TEST(BitVec, ToWordMasksHighBits) {
  BitVec v(3);
  v.set(0, true);
  v.set(2, true);
  EXPECT_EQ(v.to_word(), 0b101u);
}

TEST(BitVec, RandomIsBalanced) {
  Rng rng(3);
  std::size_t total = 0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) total += BitVec::random(256, rng).popcount();
  const double mean = static_cast<double>(total) / trials;
  EXPECT_NEAR(mean, 128.0, 5.0);
}

TEST(BitVec, BernoulliExtremes) {
  Rng rng(4);
  EXPECT_TRUE(BitVec::bernoulli(64, 0.0, rng).is_zero());
  EXPECT_EQ(BitVec::bernoulli(64, 1.0, rng).popcount(), 64u);
}

TEST(BitVec, RandomTrimsPadding) {
  Rng rng(5);
  // Size not a multiple of 64: padding bits must stay clear so that ==,
  // popcount and is_zero are consistent.
  BitVec v = BitVec::random(70, rng);
  BitVec w = v;
  w ^= v;
  EXPECT_TRUE(w.is_zero());
  EXPECT_LE(v.popcount(), 70u);
  EXPECT_LT(v.highest_set_bit(), 70u);
}

TEST(BitVec, ToStringFormat) {
  BitVec v = BitVec::from_bits(4, {0, 3});
  EXPECT_EQ(v.to_string(), "1001");
}

}  // namespace
}  // namespace radiocast::gf2
