#include "gf2/bitvec.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace radiocast::gf2 {
namespace {

TEST(BitVec, ZeroInitialized) {
  BitVec v(100);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_TRUE(v.is_zero());
  EXPECT_EQ(v.popcount(), 0u);
  EXPECT_EQ(v.lowest_set_bit(), 100u);
  EXPECT_EQ(v.highest_set_bit(), 100u);
}

TEST(BitVec, SetGetFlip) {
  BitVec v(130);
  v.set(0, true);
  v.set(64, true);
  v.set(129, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(129));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.popcount(), 3u);
  v.flip(64);
  EXPECT_FALSE(v.get(64));
  EXPECT_EQ(v.popcount(), 2u);
  v.set(0, false);
  EXPECT_FALSE(v.get(0));
}

TEST(BitVec, LowestHighestSetBit) {
  BitVec v(200);
  v.set(70, true);
  v.set(150, true);
  EXPECT_EQ(v.lowest_set_bit(), 70u);
  EXPECT_EQ(v.highest_set_bit(), 150u);
}

TEST(BitVec, XorIsGroupAddition) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    BitVec a = BitVec::random(97, rng);
    BitVec b = BitVec::random(97, rng);
    BitVec c = BitVec::random(97, rng);
    // Commutative, associative, self-inverse, identity.
    EXPECT_EQ(a ^ b, b ^ a);
    EXPECT_EQ((a ^ b) ^ c, a ^ (b ^ c));
    EXPECT_TRUE((a ^ a).is_zero());
    EXPECT_EQ(a ^ BitVec(97), a);
  }
}

TEST(BitVec, OnesRoundTrip) {
  BitVec v = BitVec::from_bits(50, {3, 17, 49});
  const auto ones = v.ones();
  ASSERT_EQ(ones.size(), 3u);
  EXPECT_EQ(ones[0], 3u);
  EXPECT_EQ(ones[1], 17u);
  EXPECT_EQ(ones[2], 49u);
}

TEST(BitVec, DotProduct) {
  BitVec a = BitVec::from_bits(10, {1, 3, 5});
  BitVec b = BitVec::from_bits(10, {3, 5, 7});
  EXPECT_FALSE(a.dot(b));  // overlap {3,5}: parity 0
  BitVec c = BitVec::from_bits(10, {1});
  EXPECT_TRUE(a.dot(c));
}

TEST(BitVec, UnitVector) {
  BitVec e = BitVec::unit(8, 5);
  EXPECT_EQ(e.popcount(), 1u);
  EXPECT_TRUE(e.get(5));
  EXPECT_EQ(e.lowest_set_bit(), 5u);
}

TEST(BitVec, WordRoundTrip) {
  Rng rng(2);
  for (std::size_t size : {1u, 5u, 31u, 32u, 63u, 64u}) {
    BitVec v = BitVec::random(size, rng);
    const std::uint64_t w = v.to_word();
    EXPECT_EQ(BitVec::from_word(size, w), v);
  }
}

TEST(BitVec, ToWordMasksHighBits) {
  BitVec v(3);
  v.set(0, true);
  v.set(2, true);
  EXPECT_EQ(v.to_word(), 0b101u);
}

TEST(BitVec, RandomIsBalanced) {
  Rng rng(3);
  std::size_t total = 0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) total += BitVec::random(256, rng).popcount();
  const double mean = static_cast<double>(total) / trials;
  EXPECT_NEAR(mean, 128.0, 5.0);
}

TEST(BitVec, BernoulliExtremes) {
  Rng rng(4);
  EXPECT_TRUE(BitVec::bernoulli(64, 0.0, rng).is_zero());
  EXPECT_EQ(BitVec::bernoulli(64, 1.0, rng).popcount(), 64u);
}

TEST(BitVec, RandomTrimsPadding) {
  Rng rng(5);
  // Size not a multiple of 64: padding bits must stay clear so that ==,
  // popcount and is_zero are consistent.
  BitVec v = BitVec::random(70, rng);
  BitVec w = v;
  w ^= v;
  EXPECT_TRUE(w.is_zero());
  EXPECT_LE(v.popcount(), 70u);
  EXPECT_LT(v.highest_set_bit(), 70u);
}

TEST(BitVec, ToStringFormat) {
  BitVec v = BitVec::from_bits(4, {0, 3});
  EXPECT_EQ(v.to_string(), "1001");
}

TEST(BitVec, AndIntersectsSetBits) {
  const BitVec a = BitVec::from_bits(200, {0, 63, 64, 130, 199});
  const BitVec b = BitVec::from_bits(200, {0, 64, 129, 199});
  const BitVec both = a & b;
  EXPECT_EQ(both.ones(), (std::vector<std::size_t>{0, 64, 199}));

  BitVec c = a;
  c &= b;
  EXPECT_EQ(c, both);
}

TEST(BitVec, AndShortCircuitClearsTrailingWords) {
  // a populated only in its first word, b only in its last: the short-
  // circuited AND must still clear a's low word rather than keep it.
  BitVec a = BitVec::from_bits(320, {1, 2, 3});
  const BitVec b = BitVec::from_bits(320, {300, 319});
  a &= b;
  EXPECT_TRUE(a.is_zero());

  BitVec c = BitVec::from_bits(320, {300, 319});
  c &= BitVec::from_bits(320, {1, 300});
  EXPECT_EQ(c.ones(), (std::vector<std::size_t>{300}));
}

TEST(BitVec, PopcountOnSparseAndDenseVectors) {
  EXPECT_EQ(BitVec(1000).popcount(), 0u);
  EXPECT_EQ(BitVec::from_bits(1000, {5}).popcount(), 1u);
  EXPECT_EQ(BitVec::from_bits(1000, {0, 63, 64, 999}).popcount(), 4u);
  BitVec all(130);
  for (std::size_t i = 0; i < 130; ++i) all.set(i, true);
  EXPECT_EQ(all.popcount(), 130u);
}

TEST(BitVec, FindSingleBit) {
  EXPECT_EQ(BitVec(256).find_single_bit(), std::nullopt);
  EXPECT_EQ(BitVec::from_bits(256, {0}).find_single_bit(), 0u);
  EXPECT_EQ(BitVec::from_bits(256, {77}).find_single_bit(), 77u);
  EXPECT_EQ(BitVec::from_bits(256, {255}).find_single_bit(), 255u);
  // Two bits in one word, and two bits in different words: both reject.
  EXPECT_EQ(BitVec::from_bits(256, {10, 11}).find_single_bit(), std::nullopt);
  EXPECT_EQ(BitVec::from_bits(256, {10, 200}).find_single_bit(), std::nullopt);
}

TEST(BitVec, ResizePreservesPrefixAndMasksTail) {
  BitVec v = BitVec::from_bits(100, {0, 50, 99});
  v.resize(160);
  EXPECT_EQ(v.size(), 160u);
  EXPECT_EQ(v.ones(), (std::vector<std::size_t>{0, 50, 99}));

  v.resize(51);
  EXPECT_EQ(v.size(), 51u);
  EXPECT_EQ(v.ones(), (std::vector<std::size_t>{0, 50}));
  // Shrink then regrow: the truncated bits must not resurface.
  v.resize(100);
  EXPECT_EQ(v.ones(), (std::vector<std::size_t>{0, 50}));
}

TEST(BitVec, WordSpanRoundTripsWithClearExcessBits) {
  BitVec v(70);
  ASSERT_EQ(v.num_words(), 2u);
  v.words()[0] = ~0ULL;
  v.words()[1] = ~0ULL;  // sets bits 64..127, of which only 64..69 exist
  v.clear_excess_bits();
  EXPECT_EQ(v.popcount(), 70u);
  EXPECT_EQ(v.highest_set_bit(), 69u);
  BitVec expect(70);
  for (std::size_t i = 0; i < 70; ++i) expect.set(i, true);
  EXPECT_EQ(v, expect);

  const BitVec& cv = v;
  EXPECT_EQ(cv.words()[0], ~0ULL);
  EXPECT_EQ(cv.words()[1], (1ULL << 6) - 1);
}

TEST(BitVec, WordStorageIsCacheAligned) {
  BitVec v(512);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.words().data()) % 64, 0u);
}

}  // namespace
}  // namespace radiocast::gf2
