// Parameterized property tests over the GF(2) stack: algebra laws at many
// widths, decoder/batch-solver equivalence, and decode-overhead
// distributions — the invariants Stage 4 relies on at every group size the
// protocol can produce.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "gf2/coding.hpp"
#include "gf2/matrix.hpp"
#include "gf2/solver.hpp"

namespace radiocast::gf2 {
namespace {

class WidthProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WidthProperty, VectorSpaceAxioms) {
  const std::size_t w = GetParam();
  Rng rng(w);
  for (int trial = 0; trial < 10; ++trial) {
    const BitVec a = BitVec::random(w, rng);
    const BitVec b = BitVec::random(w, rng);
    const BitVec c = BitVec::random(w, rng);
    EXPECT_EQ(a ^ b, b ^ a);
    EXPECT_EQ((a ^ b) ^ c, a ^ (b ^ c));
    EXPECT_EQ(a ^ BitVec(w), a);
    EXPECT_TRUE((a ^ a).is_zero());
    // Dot product is bilinear: (a^b)·c == a·c xor b·c.
    EXPECT_EQ((a ^ b).dot(c), a.dot(c) != b.dot(c));
  }
}

TEST_P(WidthProperty, PopcountConsistentWithOnes) {
  const std::size_t w = GetParam();
  Rng rng(w + 1);
  const BitVec v = BitVec::random(w, rng);
  EXPECT_EQ(v.popcount(), v.ones().size());
  for (std::size_t i : v.ones()) EXPECT_TRUE(v.get(i));
}

TEST_P(WidthProperty, LowestHighestBracketOnes) {
  const std::size_t w = GetParam();
  Rng rng(w + 2);
  const BitVec v = BitVec::random(w, rng);
  const auto ones = v.ones();
  if (ones.empty()) {
    EXPECT_EQ(v.lowest_set_bit(), w);
    EXPECT_EQ(v.highest_set_bit(), w);
  } else {
    EXPECT_EQ(v.lowest_set_bit(), ones.front());
    EXPECT_EQ(v.highest_set_bit(), ones.back());
  }
}

TEST_P(WidthProperty, DecoderAgreesWithMatrixRank) {
  const std::size_t w = GetParam();
  Rng rng(w + 3);
  std::vector<Payload> packets;
  for (std::size_t i = 0; i < w; ++i) {
    Payload p(8);
    for (auto& b : p) b = static_cast<std::uint8_t>(rng() & 0xff);
    packets.push_back(std::move(p));
  }
  const GroupEncoder enc(packets);
  Matrix m(0, w);
  IncrementalDecoder dec(w);
  // Feed random rows one at a time; rank must track exactly.
  for (std::size_t r = 0; r < 2 * w + 8; ++r) {
    const BitVec coeffs = BitVec::random(w, rng);
    m.append_row(coeffs);
    dec.add_row(enc.encode(coeffs));
    ASSERT_EQ(dec.rank(), m.rank()) << "after row " << r;
  }
  ASSERT_TRUE(dec.complete());
  for (std::size_t i = 0; i < w; ++i) EXPECT_EQ(dec.packet(i), packets[i]);
}

TEST_P(WidthProperty, DecodeOverheadHasGeometricTail) {
  // Rows-beyond-width needed to decode: P(overhead > j) ~ 2^-j. Check the
  // mean is below 3 (true mean is ~1.6) at every width.
  const std::size_t w = GetParam();
  Rng rng(w + 4);
  std::vector<Payload> packets;
  for (std::size_t i = 0; i < w; ++i) packets.push_back(Payload{static_cast<std::uint8_t>(i)});
  const GroupEncoder enc(packets);
  RunningStats overhead;
  for (int trial = 0; trial < 100; ++trial) {
    IncrementalDecoder dec(w);
    std::size_t rows = 0;
    while (!dec.complete()) {
      dec.add_row(enc.encode_random(rng));
      ++rows;
    }
    overhead.add(static_cast<double>(rows - w));
  }
  EXPECT_LT(overhead.mean(), 3.0);
}

INSTANTIATE_TEST_SUITE_P(Widths, WidthProperty,
                         ::testing::Values<std::size_t>(1, 2, 3, 7, 8, 9, 16, 31,
                                                        32, 33, 63, 64));

TEST(MatrixProperty, RankSubadditiveUnderRowAppend) {
  Rng rng(99);
  Matrix m(0, 12);
  std::size_t prev = 0;
  for (int r = 0; r < 30; ++r) {
    m.append_row(BitVec::random(12, rng));
    const std::size_t rank = m.rank();
    EXPECT_GE(rank, prev);
    EXPECT_LE(rank, prev + 1);
    prev = rank;
  }
  EXPECT_EQ(prev, 12u);  // 30 random rows over width 12: full whp
}

TEST(MatrixProperty, SolveConsistentForAnyRhsInColumnSpace) {
  Rng rng(100);
  for (int trial = 0; trial < 20; ++trial) {
    const Matrix m = Matrix::random(10, 6, rng);
    const BitVec x = BitVec::random(6, rng);
    const auto sol = m.solve(m.multiply(x));
    ASSERT_TRUE(sol.has_value());
    EXPECT_EQ(m.multiply(*sol), m.multiply(x));
  }
}

}  // namespace
}  // namespace radiocast::gf2
