#include "gf2/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace radiocast::gf2 {
namespace {

TEST(Matrix, IdentityHasFullRank) {
  for (std::size_t n : {1u, 2u, 8u, 33u, 64u}) {
    EXPECT_EQ(Matrix::identity(n).rank(), n);
  }
}

TEST(Matrix, ZeroHasRankZero) {
  Matrix m(5, 7);
  EXPECT_EQ(m.rank(), 0u);
}

TEST(Matrix, DuplicateRowsReduceRank) {
  Matrix m(0, 4);
  m.append_row(BitVec::from_bits(4, {0, 1}));
  m.append_row(BitVec::from_bits(4, {0, 1}));
  m.append_row(BitVec::from_bits(4, {2}));
  EXPECT_EQ(m.rank(), 2u);
}

TEST(Matrix, LinearlyDependentTriple) {
  Matrix m(0, 4);
  const BitVec a = BitVec::from_bits(4, {0, 1});
  const BitVec b = BitVec::from_bits(4, {1, 2});
  m.append_row(a);
  m.append_row(b);
  m.append_row(a ^ b);  // dependent
  EXPECT_EQ(m.rank(), 2u);
}

TEST(Matrix, RankBoundedByDims) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t r = 1 + rng.next_below(20);
    const std::size_t c = 1 + rng.next_below(20);
    const Matrix m = Matrix::random(r, c, rng);
    EXPECT_LE(m.rank(), std::min(r, c));
  }
}

TEST(Matrix, MultiplyIdentity) {
  Rng rng(2);
  const Matrix id = Matrix::identity(16);
  const BitVec x = BitVec::random(16, rng);
  EXPECT_EQ(id.multiply(x), x);
}

TEST(Matrix, MultiplyLinear) {
  Rng rng(3);
  const Matrix m = Matrix::random(12, 9, rng);
  const BitVec x = BitVec::random(9, rng);
  const BitVec y = BitVec::random(9, rng);
  EXPECT_EQ(m.multiply(x ^ y), m.multiply(x) ^ m.multiply(y));
}

TEST(Matrix, SolveRoundTrip) {
  Rng rng(4);
  int solved = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const Matrix m = Matrix::random(20, 12, rng);
    const BitVec x = BitVec::random(12, rng);
    const BitVec b = m.multiply(x);
    const auto sol = m.solve(b);
    ASSERT_TRUE(sol.has_value());  // consistent by construction
    EXPECT_EQ(m.multiply(*sol), b);
    if (m.rank() == 12) {
      EXPECT_EQ(*sol, x);  // unique solution
      ++solved;
    }
  }
  EXPECT_GT(solved, 30);  // most random 20x12 matrices have full column rank
}

TEST(Matrix, SolveDetectsInconsistency) {
  // Rows: x0, x0 -> rhs (1, 0) is inconsistent.
  Matrix m(0, 2);
  m.append_row(BitVec::from_bits(2, {0}));
  m.append_row(BitVec::from_bits(2, {0}));
  BitVec b(2);
  b.set(0, true);
  EXPECT_FALSE(m.solve(b).has_value());  // (1, 0): x0 = 1 and x0 = 0
  b.set(1, true);
  // (1, 1) is consistent: x0 = 1 satisfies both rows.
  const auto sol = m.solve(b);
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(m.multiply(*sol), b);
  b.set(0, false);
  EXPECT_FALSE(m.solve(b).has_value());  // (0, 1)
  b.set(1, false);
  EXPECT_TRUE(m.solve(b).has_value());  // (0, 0): zero solution
}

TEST(Matrix, AppendRowSetsWidth) {
  Matrix m;
  m.append_row(BitVec::from_bits(6, {2}));
  EXPECT_EQ(m.cols(), 6u);
  EXPECT_EQ(m.rows(), 1u);
}

// Brute-force rank check on tiny matrices: enumerate all row subsets and
// find the largest independent one.
std::size_t brute_rank(const Matrix& m) {
  const std::size_t n = m.rows();
  std::size_t best = 0;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    // Check whether the selected rows XOR to zero for some nonempty subset:
    // instead, test independence by Gaussian elimination on the subset.
    std::vector<BitVec> rows;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) rows.push_back(m.row(i));
    }
    // Eliminate.
    std::size_t rank = 0;
    for (std::size_t col = 0; col < m.cols(); ++col) {
      std::size_t pivot = rank;
      while (pivot < rows.size() && !rows[pivot].get(col)) ++pivot;
      if (pivot == rows.size()) continue;
      std::swap(rows[rank], rows[pivot]);
      for (std::size_t r = 0; r < rows.size(); ++r) {
        if (r != rank && rows[r].get(col)) rows[r] ^= rows[rank];
      }
      ++rank;
    }
    if (rank == rows.size()) best = std::max(best, rank);
  }
  return best;
}

TEST(Matrix, RankMatchesBruteForceOnSmall) {
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const Matrix m = Matrix::random(5, 4, rng);
    EXPECT_EQ(m.rank(), brute_rank(m));
  }
}

// Lemma 3 sanity at test scale: with l = 2(w+2) + 8 ln(1/eps) rows the
// matrix has full column rank with probability >= 1 - eps.
TEST(Matrix, Lemma3ThresholdHolds) {
  Rng rng(6);
  const std::size_t w = 10;
  const double eps = 0.05;
  const auto l = static_cast<std::size_t>(2 * (w + 2) + 8 * std::log(1.0 / eps));
  int full = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    if (Matrix::random(l, w, rng).full_column_rank()) ++full;
  }
  EXPECT_GE(static_cast<double>(full) / trials, 1.0 - eps);
}

}  // namespace
}  // namespace radiocast::gf2
