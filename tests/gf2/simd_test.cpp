// The dispatched xor_bytes kernel against a naive byte loop.
//
// xor_bytes resolves to AVX2 or portable at startup; either way it must be
// byte-for-byte the naive loop on every size and alignment. Sizes straddle
// the kernels' internal block widths (32-byte AVX2 stride, 4x8-byte
// portable stride, scalar tail) and offsets force unaligned heads.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "gf2/simd.hpp"

namespace radiocast::gf2 {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng() & 0xff);
  return v;
}

TEST(Simd, XorBytesMatchesNaiveLoopAcrossSizes) {
  Rng rng(0x51d0ULL);
  // Straddle every internal stride: empty, sub-word, word, 4-word block,
  // 32-byte vector, and ragged tails around each.
  const std::size_t sizes[] = {0,  1,  3,  7,  8,   9,   15,  16,  31,  32,
                               33, 63, 64, 65, 127, 128, 255, 256, 257, 1000};
  for (const std::size_t n : sizes) {
    std::vector<std::uint8_t> dst = random_bytes(n, rng);
    const std::vector<std::uint8_t> src = random_bytes(n, rng);
    std::vector<std::uint8_t> expect = dst;
    for (std::size_t i = 0; i < n; ++i) expect[i] ^= src[i];

    xor_bytes(dst.data(), src.data(), n);
    EXPECT_EQ(dst, expect) << "n=" << n;
  }
}

TEST(Simd, XorBytesHandlesUnalignedOffsets) {
  Rng rng(0x51d1ULL);
  std::vector<std::uint8_t> dst_buf = random_bytes(512, rng);
  const std::vector<std::uint8_t> src_buf = random_bytes(512, rng);
  for (std::size_t dst_off = 0; dst_off < 8; ++dst_off) {
    for (std::size_t src_off = 0; src_off < 8; ++src_off) {
      std::vector<std::uint8_t> dst = dst_buf;
      const std::size_t n = 300;
      std::vector<std::uint8_t> expect = dst;
      for (std::size_t i = 0; i < n; ++i) expect[dst_off + i] ^= src_buf[src_off + i];

      xor_bytes(dst.data() + dst_off, src_buf.data() + src_off, n);
      EXPECT_EQ(dst, expect) << "dst_off=" << dst_off << " src_off=" << src_off;
    }
  }
}

TEST(Simd, XorBytesIsSelfInverse) {
  Rng rng(0x51d2ULL);
  std::vector<std::uint8_t> dst = random_bytes(333, rng);
  const std::vector<std::uint8_t> original = dst;
  const std::vector<std::uint8_t> src = random_bytes(333, rng);
  xor_bytes(dst.data(), src.data(), dst.size());
  xor_bytes(dst.data(), src.data(), dst.size());
  EXPECT_EQ(dst, original);
}

TEST(Simd, XorWordsMatchesXorBytes) {
  Rng rng(0x51d3ULL);
  std::vector<std::uint64_t> dst(37);
  std::vector<std::uint64_t> src(37);
  for (auto& w : dst) w = rng();
  for (auto& w : src) w = rng();
  std::vector<std::uint64_t> expect = dst;
  for (std::size_t i = 0; i < expect.size(); ++i) expect[i] ^= src[i];

  xor_words(dst.data(), src.data(), dst.size());
  EXPECT_EQ(dst, expect);
}

TEST(Simd, KernelNameIsKnown) {
  const std::string name = simd_kernel_name();
  EXPECT_TRUE(name == "avx2" || name == "portable") << name;
}

TEST(Simd, AlignedAllocReturnsCacheAlignedStorage) {
  AlignedAlloc<std::uint64_t> alloc;
  std::uint64_t* p = alloc.allocate(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
  alloc.deallocate(p, 100);
  EXPECT_EQ(alloc.allocate(0), nullptr);
}

}  // namespace
}  // namespace radiocast::gf2
