#include "gf2/coding.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace radiocast::gf2 {
namespace {

// Parameterized round-trip over group widths: encode random rows until a
// fresh decoder completes, verify exact recovery. This is the property the
// whole of Stage 4 rests on.
class CodingRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(CodingRoundTrip, RandomRowsRecoverGroup) {
  const auto [width, payload_bytes] = GetParam();
  Rng rng(width * 1000 + payload_bytes);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Payload> packets;
    for (std::size_t i = 0; i < width; ++i) {
      Payload p(payload_bytes);
      for (auto& b : p) b = static_cast<std::uint8_t>(rng() & 0xff);
      packets.push_back(std::move(p));
    }
    GroupEncoder enc(packets);
    IncrementalDecoder dec(width);
    std::size_t safety = 0;
    while (!dec.complete()) {
      dec.add_row(enc.encode_random(rng));
      ASSERT_LT(++safety, 10000u);
    }
    for (std::size_t i = 0; i < width; ++i) {
      EXPECT_EQ(dec.packet(i), packets[i]) << "packet " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndSizes, CodingRoundTrip,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3, 5, 8, 16, 24, 32),
                       ::testing::Values<std::size_t>(1, 8, 24)));

TEST(Coding, EmptySubsetIsZeroRow) {
  Rng rng(1);
  std::vector<Payload> packets = {{0x01}, {0x02}};
  GroupEncoder enc(packets);
  const CodedRow row = enc.encode(BitVec(2));
  EXPECT_TRUE(row.coeffs.is_zero());
  EXPECT_TRUE(row.payload.empty());
  IncrementalDecoder dec(2);
  EXPECT_FALSE(dec.add_row(row));
  EXPECT_EQ(dec.rank(), 0u);
}

TEST(Coding, FullSubsetXorsEverything) {
  std::vector<Payload> packets = {{0xf0}, {0x0f}, {0xff}};
  GroupEncoder enc(packets);
  const CodedRow row = enc.encode(BitVec::from_bits(3, {0, 1, 2}));
  EXPECT_EQ(row.payload, Payload{0x00});
}

TEST(Coding, SingletonGroup) {
  Rng rng(2);
  std::vector<Payload> packets = {{0xab, 0xcd}};
  GroupEncoder enc(packets);
  IncrementalDecoder dec(1);
  // Half the random rows are the empty subset; decoding still terminates.
  int safety = 0;
  while (!dec.complete()) {
    dec.add_row(enc.encode_random(rng));
    ASSERT_LT(++safety, 1000);
  }
  EXPECT_EQ(dec.packet(0), packets[0]);
}

TEST(Coding, MixedPayloadLengthsRoundTrip) {
  // Packets in one group may have different sizes; XOR pads with zeros and
  // decoding recovers the padded images (decodes_to compares mod padding).
  Rng rng(3);
  std::vector<Payload> packets = {{0x11}, {0x22, 0x33, 0x44}, {0x55, 0x66}};
  GroupEncoder enc(packets);
  std::vector<CodedRow> rows;
  for (int i = 0; i < 64; ++i) rows.push_back(enc.encode_random(rng));
  EXPECT_TRUE(decodes_to(3, rows, packets));
}

}  // namespace
}  // namespace radiocast::gf2
