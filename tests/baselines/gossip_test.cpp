#include "baselines/gossip_flood.hpp"

#include <gtest/gtest.h>

#include "baselines/uncoded_pipeline.hpp"
#include "common/rng.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"

namespace radiocast::baselines {
namespace {

using core::make_placement;
using core::Placement;
using core::PlacementMode;
using core::RunResult;

TEST(GossipFlood, DeliversSmallWorkload) {
  Rng grng(1);
  const graph::Graph g = graph::make_gnp_connected(24, 0.2, grng);
  const radio::Knowledge know = radio::Knowledge::exact(g);
  Rng rng(2);
  const Placement p = make_placement(24, 8, PlacementMode::kRandom, 8, rng);
  const RunResult r = run_gossip_flood(g, know, p, 3);
  EXPECT_TRUE(r.delivered_all);
  EXPECT_FALSE(r.timed_out);
}

TEST(GossipFlood, DeliversOnDeepPath) {
  const graph::Graph g = graph::make_path(24);
  const radio::Knowledge know = radio::Knowledge::exact(g);
  Rng rng(4);
  const Placement p = make_placement(24, 5, PlacementMode::kRandom, 8, rng);
  const RunResult r = run_gossip_flood(g, know, p, 5);
  EXPECT_TRUE(r.delivered_all);
}

TEST(GossipFlood, ZeroPackets) {
  const graph::Graph g = graph::make_path(6);
  const RunResult r =
      run_gossip_flood(g, radio::Knowledge::exact(g), Placement(6), 1);
  EXPECT_TRUE(r.delivered_all);
}

TEST(GossipFlood, SingleSourceBurst) {
  Rng grng(6);
  const graph::Graph g = graph::make_random_geometric(30, 0.35, grng);
  const radio::Knowledge know = radio::Knowledge::exact(g);
  Rng rng(7);
  const Placement p = make_placement(30, 20, PlacementMode::kSingleSource, 8, rng);
  const RunResult r = run_gossip_flood(g, know, p, 8);
  EXPECT_TRUE(r.delivered_all);
}

TEST(GossipFlood, InRegistryAndRuns) {
  Rng grng(9);
  const graph::Graph g = graph::make_gnp_connected(20, 0.25, grng);
  const radio::Knowledge know = radio::Knowledge::exact(g);
  Rng rng(10);
  const Placement p = make_placement(20, 10, PlacementMode::kRandom, 8, rng);
  const RunResult r = run_algo(Algo::kGossipFlood, g, know, p, 11);
  EXPECT_TRUE(r.delivered_all);
  EXPECT_EQ(algo_name(Algo::kGossipFlood), "gossip flood (naive)");
  EXPECT_EQ(all_algos().size(), 4u);
}

TEST(GossipFlood, StructuredProtocolWinsAtScale) {
  // Naive gossip is genuinely competitive at small k (no setup stages to
  // pay for), but its uniform-choice dilution makes the cost grow ~k·ln k:
  // past the crossover (~k = 400 at this size) the paper's pipeline wins
  // despite leader election + BFS. Test both sides of the crossover.
  Rng grng(12);
  const graph::Graph g = graph::make_gnp_connected(32, 0.15, grng);
  const radio::Knowledge know = radio::Knowledge::exact(g);
  Rng r_small(13), r_large(13);
  const Placement small = make_placement(32, 96, PlacementMode::kRandom, 8, r_small);
  const Placement large = make_placement(32, 1024, PlacementMode::kRandom, 8, r_large);

  const RunResult gossip_small = run_algo(Algo::kGossipFlood, g, know, small, 14);
  const RunResult coded_small = run_algo(Algo::kCoded, g, know, small, 14);
  ASSERT_TRUE(gossip_small.delivered_all);
  ASSERT_TRUE(coded_small.delivered_all);
  EXPECT_LT(gossip_small.total_rounds, coded_small.total_rounds);

  const RunResult gossip_large = run_algo(Algo::kGossipFlood, g, know, large, 14);
  const RunResult coded_large = run_algo(Algo::kCoded, g, know, large, 14);
  ASSERT_TRUE(gossip_large.delivered_all);
  ASSERT_TRUE(coded_large.delivered_all);
  EXPECT_LT(coded_large.total_rounds, gossip_large.total_rounds);
  // Amortized growth vs shrinkage across the sweep.
  EXPECT_GT(gossip_large.amortized_rounds_per_packet() * 96.0 * 1.2,
            gossip_small.amortized_rounds_per_packet() * 96.0);
  EXPECT_LT(coded_large.amortized_rounds_per_packet(),
            coded_small.amortized_rounds_per_packet());
}

TEST(GossipFloodNode, OwnPacketsCountAsDelivered) {
  radio::Knowledge know;
  know.n_hat = 16;
  know.delta_hat = 4;
  know.d_hat = 3;
  GossipFloodNode::Config cfg;
  cfg.know = know;
  cfg.expected_packets = 2;
  radio::Packet a;
  a.id = radio::make_packet_id(1, 0);
  radio::Packet b;
  b.id = radio::make_packet_id(1, 1);
  Rng rng(15);
  GossipFloodNode node(cfg, 1, {a, b}, rng);
  EXPECT_TRUE(node.done());
  EXPECT_EQ(node.delivered_packets().size(), 2u);
}

TEST(GossipFloodNode, LearnsFromPlainPackets) {
  radio::Knowledge know;
  know.n_hat = 16;
  know.delta_hat = 4;
  know.d_hat = 3;
  GossipFloodNode::Config cfg;
  cfg.know = know;
  cfg.expected_packets = 1;
  Rng rng(16);
  GossipFloodNode node(cfg, 0, {}, rng);
  EXPECT_FALSE(node.done());
  radio::PlainPacketMsg msg;
  msg.packet.id = radio::make_packet_id(2, 0);
  msg.packet.payload = {7};
  node.on_receive(5, radio::Message{2, msg});
  EXPECT_TRUE(node.done());
  EXPECT_EQ(node.known_count(), 1u);
  // Duplicate receptions do not double-count.
  node.on_receive(6, radio::Message{2, msg});
  EXPECT_EQ(node.known_count(), 1u);
}

TEST(GossipFloodNode, ExpiredPacketsStopTransmitting) {
  radio::Knowledge know;
  know.n_hat = 4;
  know.delta_hat = 2;
  know.d_hat = 1;
  GossipFloodNode::Config cfg;
  cfg.know = know;
  cfg.age_base_epochs = 2;
  cfg.age_per_packet_epochs = 0;
  cfg.expected_packets = 1;
  radio::Packet a;
  a.id = radio::make_packet_id(0, 0);
  Rng rng(17);
  GossipFloodNode node(cfg, 0, {a}, rng);
  // Window = 2 epochs * logΔ(=1) = 2 rounds; far beyond it the node must
  // be silent forever.
  bool late_transmit = false;
  for (radio::Round r = 100; r < 400; ++r) {
    late_transmit |= node.on_transmit(r).has_value();
  }
  EXPECT_FALSE(late_transmit);
}

}  // namespace
}  // namespace radiocast::baselines
