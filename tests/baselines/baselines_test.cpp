#include <gtest/gtest.h>

#include "baselines/sequential_bgi.hpp"
#include "baselines/uncoded_pipeline.hpp"
#include "common/rng.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"

namespace radiocast::baselines {
namespace {

using core::make_placement;
using core::Placement;
using core::PlacementMode;
using core::RunResult;

TEST(SequentialBgi, DeliversAllPackets) {
  Rng grng(1);
  const graph::Graph g = graph::make_gnp_connected(30, 0.15, grng);
  const radio::Knowledge know = radio::Knowledge::exact(g);
  Rng rng(2);
  const Placement p = make_placement(30, 12, PlacementMode::kRandom, 16, rng);
  const RunResult r = run_sequential_bgi(g, know, p, 3);
  EXPECT_TRUE(r.delivered_all);
  EXPECT_FALSE(r.timed_out);
  EXPECT_EQ(r.k, 12u);
}

TEST(SequentialBgi, ZeroPackets) {
  const graph::Graph g = graph::make_path(6);
  const Placement p(6);
  const RunResult r =
      run_sequential_bgi(g, radio::Knowledge::exact(g), p, 1);
  EXPECT_TRUE(r.delivered_all);
  EXPECT_EQ(r.total_rounds, 0u);
}

TEST(SequentialBgi, RoundsGrowLinearlyInK) {
  Rng grng(4);
  const graph::Graph g = graph::make_gnp_connected(24, 0.2, grng);
  const radio::Knowledge know = radio::Knowledge::exact(g);
  Rng r1(5), r2(6);
  const Placement p4 = make_placement(24, 4, PlacementMode::kRandom, 8, r1);
  const Placement p16 = make_placement(24, 16, PlacementMode::kRandom, 8, r2);
  const RunResult a = run_sequential_bgi(g, know, p4, 7);
  const RunResult b = run_sequential_bgi(g, know, p16, 7);
  ASSERT_TRUE(a.delivered_all);
  ASSERT_TRUE(b.delivered_all);
  // 4x the packets => roughly 4x the rounds (window-quantized).
  const double ratio =
      static_cast<double>(b.total_rounds) / static_cast<double>(a.total_rounds);
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 5.0);
}

TEST(UncodedPipeline, DeliversAllPackets) {
  Rng grng(8);
  const graph::Graph g = graph::make_random_geometric(36, 0.3, grng);
  const radio::Knowledge know = radio::Knowledge::exact(g);
  Rng rng(9);
  const Placement p = make_placement(36, 20, PlacementMode::kRandom, 16, rng);
  const RunResult r = run_algo(Algo::kUncodedPipeline, g, know, p, 10);
  EXPECT_TRUE(r.delivered_all);
  EXPECT_TRUE(r.leader_ok);
}

TEST(Registry, AllAlgosRunAndDeliver) {
  Rng grng(11);
  const graph::Graph g = graph::make_gnp_connected(28, 0.18, grng);
  const radio::Knowledge know = radio::Knowledge::exact(g);
  Rng rng(12);
  const Placement p = make_placement(28, 16, PlacementMode::kRandom, 8, rng);
  for (const Algo algo : all_algos()) {
    const RunResult r = run_algo(algo, g, know, p, 13);
    EXPECT_TRUE(r.delivered_all) << algo_name(algo);
    EXPECT_FALSE(r.timed_out) << algo_name(algo);
  }
}

TEST(Registry, NamesAreDistinct) {
  EXPECT_NE(algo_name(Algo::kCoded), algo_name(Algo::kUncodedPipeline));
  EXPECT_NE(algo_name(Algo::kCoded), algo_name(Algo::kSequentialBgi));
}

TEST(Comparison, CodedWinsAtLargeK) {
  // The paper's headline at test scale: with k well past the additive
  // term, the coded protocol beats both baselines.
  Rng grng(14);
  const graph::Graph g = graph::make_gnp_connected(32, 0.15, grng);
  const radio::Knowledge know = radio::Knowledge::exact(g);
  Rng rng(15);
  const Placement p = make_placement(32, 160, PlacementMode::kRandom, 8, rng);
  const RunResult coded = run_algo(Algo::kCoded, g, know, p, 16);
  const RunResult uncoded = run_algo(Algo::kUncodedPipeline, g, know, p, 16);
  const RunResult seq = run_algo(Algo::kSequentialBgi, g, know, p, 16);
  ASSERT_TRUE(coded.delivered_all);
  ASSERT_TRUE(uncoded.delivered_all);
  ASSERT_TRUE(seq.delivered_all);
  EXPECT_LT(coded.total_rounds, uncoded.total_rounds);
  EXPECT_LT(coded.total_rounds, seq.total_rounds);
}

TEST(Comparison, SequentialBgiCompetitiveAtTinyK) {
  // At k = 1 the pipeline's fixed stages dominate; sequential BGI is just
  // one flood and must win.
  Rng grng(17);
  const graph::Graph g = graph::make_gnp_connected(32, 0.15, grng);
  const radio::Knowledge know = radio::Knowledge::exact(g);
  Rng rng(18);
  const Placement p = make_placement(32, 1, PlacementMode::kRandom, 8, rng);
  const RunResult coded = run_algo(Algo::kCoded, g, know, p, 19);
  const RunResult seq = run_algo(Algo::kSequentialBgi, g, know, p, 19);
  ASSERT_TRUE(coded.delivered_all);
  ASSERT_TRUE(seq.delivered_all);
  EXPECT_LT(seq.total_rounds, coded.total_rounds);
}

}  // namespace
}  // namespace radiocast::baselines
