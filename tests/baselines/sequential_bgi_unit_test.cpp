// Unit-level tests of the sequential-BGI baseline node: window
// synchronization, source arming, join-on-receive, and bookkeeping.
#include "baselines/sequential_bgi.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace radiocast::baselines {
namespace {

radio::Knowledge tiny_know() {
  radio::Knowledge k;
  k.n_hat = 8;
  k.delta_hat = 2;
  k.d_hat = 2;
  return k;
}

radio::Packet pkt(radio::NodeId origin, std::uint32_t seq) {
  radio::Packet p;
  p.id = radio::make_packet_id(origin, seq);
  p.payload = {static_cast<std::uint8_t>(seq)};
  return p;
}

SequentialBgiNode::Config config_with(const std::vector<radio::PacketId>& order,
                                      std::uint32_t epochs = 4) {
  SequentialBgiNode::Config cfg;
  cfg.know = tiny_know();
  cfg.epochs_per_packet = epochs;
  cfg.order = order;
  return cfg;
}

TEST(SequentialBgiNode, SourceTransmitsOnlyInItsWindow) {
  const radio::Packet a = pkt(1, 0);
  const radio::Packet b = pkt(2, 0);
  const auto cfg = config_with({a.id, b.id});
  Rng rng(1);
  SequentialBgiNode node(cfg, 1, {a}, rng);
  const std::uint64_t window = 4ull * tiny_know().log_delta();
  bool tx_in_own = false, tx_in_other = false;
  for (std::uint64_t r = 0; r < 2 * window; ++r) {
    const auto out = node.on_transmit(r);
    if (!out.has_value()) continue;
    const auto* plain = std::get_if<radio::PlainPacketMsg>(&*out);
    ASSERT_NE(plain, nullptr);
    if (r < window) {
      EXPECT_EQ(plain->packet.id, a.id);
      tx_in_own = true;
    } else {
      tx_in_other = true;  // node 1 does not hold packet b
    }
  }
  EXPECT_TRUE(tx_in_own);
  EXPECT_FALSE(tx_in_other);
}

TEST(SequentialBgiNode, JoinsFloodOfCurrentWindowOnly) {
  const radio::Packet a = pkt(1, 0);
  const radio::Packet b = pkt(2, 0);
  const auto cfg = config_with({a.id, b.id});
  Rng rng(2);
  SequentialBgiNode node(cfg, 3, {}, rng);
  // Deliver packet b (window 1's packet) during window 0: it is stored but
  // the node must not start flooding it in window 0.
  radio::PlainPacketMsg msg;
  msg.packet = b;
  node.on_receive(0, radio::Message{2, msg});
  const std::uint64_t window = 4ull * tiny_know().log_delta();
  for (std::uint64_t r = 1; r < window; ++r) {
    EXPECT_FALSE(node.on_transmit(r).has_value());
  }
  // In window 1, it relays b.
  bool relayed = false;
  for (std::uint64_t r = window; r < 2 * window; ++r) {
    relayed |= node.on_transmit(r).has_value();
  }
  EXPECT_TRUE(relayed);
}

TEST(SequentialBgiNode, DoneAfterCollectingEverything) {
  const radio::Packet a = pkt(1, 0);
  const radio::Packet b = pkt(2, 0);
  const auto cfg = config_with({a.id, b.id});
  Rng rng(3);
  SequentialBgiNode node(cfg, 0, {}, rng);
  EXPECT_FALSE(node.done());
  radio::PlainPacketMsg ma;
  ma.packet = a;
  node.on_receive(0, radio::Message{1, ma});
  EXPECT_FALSE(node.done());
  radio::PlainPacketMsg mb;
  mb.packet = b;
  node.on_receive(1, radio::Message{2, mb});
  EXPECT_TRUE(node.done());
  const auto delivered = node.delivered_packets();
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0].id, a.id);
  EXPECT_EQ(delivered[1].id, b.id);
}

TEST(SequentialBgiNode, SourceHoldsOwnPacketsFromStart) {
  const radio::Packet a = pkt(1, 0);
  const auto cfg = config_with({a.id});
  Rng rng(4);
  SequentialBgiNode node(cfg, 1, {a}, rng);
  EXPECT_TRUE(node.done());
  EXPECT_EQ(node.delivered_packets().size(), 1u);
}

TEST(SequentialBgiNode, SilentAfterAllWindows) {
  const radio::Packet a = pkt(1, 0);
  const auto cfg = config_with({a.id});
  Rng rng(5);
  SequentialBgiNode node(cfg, 1, {a}, rng);
  const std::uint64_t window = 4ull * tiny_know().log_delta();
  for (std::uint64_t r = window; r < 3 * window; ++r) {
    EXPECT_FALSE(node.on_transmit(r).has_value());
  }
}

}  // namespace
}  // namespace radiocast::baselines
