// Manifest reproducibility: the deterministic section of a manifest (and
// the whole results document) must be byte-identical across repeated runs
// and across thread budgets; only the environment block may vary.
#include "exp/manifest.hpp"

#include <gtest/gtest.h>

#include "exp/run.hpp"
#include "exp/scenario.hpp"

namespace radiocast::exp {
namespace {

ScenarioSpec tiny_spec() {
  return parse_scenario(R"({
    "id": "tiny",
    "topology": { "family": "geometric", "n": 16, "seed": 5, "radius": 0.5 },
    "algos": ["coded", "seq_bgi"],
    "k": [4],
    "seeds": 2,
    "seed_base": 42
  })");
}

/// The manifest with its environment block blanked — everything that is
/// covered by manifest_digest.
std::string deterministic_part(const JsonValue& manifest) {
  JsonValue copy = manifest;
  JsonValue* env = copy.as_object().find("environment");
  if (env != nullptr) *env = JsonValue();
  return json_serialize(copy);
}

TEST(Manifest, Fnv1a64MatchesReferenceVectors) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
  EXPECT_EQ(digest_string("foobar"), "fnv1a64:85944171f73967e8");
}

TEST(Manifest, DigestIgnoresEnvironment) {
  const ScenarioSpec spec = tiny_spec();
  ScenarioOutcome a = run_scenario(spec);
  // Mutating the environment block must not change the recorded digest's
  // validity: the digest is computed before the environment is appended.
  JsonValue* env = a.manifest.as_object().find("environment");
  ASSERT_NE(env, nullptr);
  env->as_object().set("timestamp_utc", "2026-01-01T00:00:00Z");
  const ScenarioOutcome b = run_scenario(spec);
  EXPECT_EQ(manifest_digest(a.manifest), manifest_digest(b.manifest));
}

TEST(Manifest, RepeatedRunsAreByteIdentical) {
  const ScenarioSpec spec = tiny_spec();
  const ScenarioOutcome a = run_scenario(spec);
  const ScenarioOutcome b = run_scenario(spec);
  EXPECT_EQ(json_serialize(a.results), json_serialize(b.results));
  EXPECT_EQ(deterministic_part(a.manifest), deterministic_part(b.manifest));
}

TEST(Manifest, ThreadBudgetDoesNotPerturbResults) {
  ScenarioSpec spec = tiny_spec();
  spec.threads = 1;
  const ScenarioOutcome seq = run_scenario(spec);
  spec.threads = 4;
  const ScenarioOutcome par = run_scenario(spec);
  EXPECT_EQ(json_serialize(seq.results), json_serialize(par.results));
  EXPECT_EQ(manifest_digest(seq.manifest), manifest_digest(par.manifest));
}

TEST(Manifest, ShardCountDoesNotPerturbResults) {
  // `shards`, like `threads`, is a pure execution knob: results, manifest
  // digest, and telemetry must be byte-identical at any shard count.
  ScenarioSpec spec = tiny_spec();
  spec.shards = 1;
  const ScenarioOutcome one = run_scenario(spec);
  spec.shards = 4;
  const ScenarioOutcome four = run_scenario(spec);
  EXPECT_EQ(json_serialize(one.results), json_serialize(four.results));
  EXPECT_EQ(manifest_digest(one.manifest), manifest_digest(four.manifest));
  EXPECT_EQ(one.telemetry, four.telemetry);
}

TEST(Manifest, SeedBaseChangesTrialDigests) {
  ScenarioSpec spec = tiny_spec();
  const ScenarioOutcome a = run_scenario(spec);
  spec.seed_base = 43;
  const ScenarioOutcome b = run_scenario(spec);
  EXPECT_NE(manifest_digest(a.manifest), manifest_digest(b.manifest));
}

TEST(Manifest, RecordsSeedGridAndPerTrialDigests) {
  const ScenarioSpec spec = tiny_spec();
  const ScenarioOutcome out = run_scenario(spec);
  const JsonObject& m = out.manifest.as_object();
  EXPECT_EQ(m.find("format")->as_string(), "radiocast-manifest-v1");

  const JsonObject& grid = m.find("seed_grid")->as_object();
  EXPECT_EQ(grid.find("placement_seeds")->as_array().size(), 2u);
  EXPECT_EQ(grid.find("placement_seeds")->as_array()[0].as_uint(), 42u);
  EXPECT_EQ(grid.find("run_seeds")->as_array()[1].as_uint(), 42u + 1000u + 1u);

  const auto& cells = m.find("cells")->as_array();
  ASSERT_EQ(cells.size(), 2u);  // 2 algos x 1 k
  for (const JsonValue& cell : cells) {
    const auto& digests = cell.as_object().find("trial_digests")->as_array();
    ASSERT_EQ(digests.size(), 2u);
    for (const JsonValue& d : digests)
      EXPECT_EQ(d.as_string().rfind("fnv1a64:", 0), 0u) << d.as_string();
  }
}

TEST(Manifest, BuildInfoIsPopulated) {
  const BuildInfo b = build_info();
  EXPECT_FALSE(b.git_describe.empty());
  EXPECT_FALSE(b.compiler.empty());
}

TEST(Manifest, SpecDigestMatchesEmbeddedScenario) {
  const ScenarioSpec spec = tiny_spec();
  const ScenarioOutcome out = run_scenario(spec);
  const JsonObject& m = out.manifest.as_object();
  // The recorded spec_digest is recomputable from the embedded scenario.
  EXPECT_EQ(m.find("spec_digest")->as_string(),
            digest_json(*m.find("scenario")));
  EXPECT_EQ(m.find("spec_digest")->as_string(), digest_json(scenario_to_json(spec)));
}

}  // namespace
}  // namespace radiocast::exp
