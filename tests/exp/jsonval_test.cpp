// Parser/serializer unit tests for the scenario JSON layer (exp/jsonval).
#include "exp/jsonval.hpp"

#include <gtest/gtest.h>

namespace radiocast::exp {
namespace {

TEST(JsonVal, ParsesScalars) {
  EXPECT_TRUE(json_parse("null").is_null());
  EXPECT_EQ(json_parse("true").as_bool(), true);
  EXPECT_EQ(json_parse("false").as_bool(), false);
  EXPECT_EQ(json_parse("42").as_uint(), 42u);
  EXPECT_EQ(json_parse("-7").as_int(), -7);
  EXPECT_DOUBLE_EQ(json_parse("2.5").as_double(), 2.5);
  EXPECT_EQ(json_parse("\"hi\"").as_string(), "hi");
}

TEST(JsonVal, IntegersSurviveExactly) {
  // 2^63-1 and large uint64 values must not round-trip through double.
  EXPECT_EQ(json_parse("9223372036854775807").as_int(), INT64_MAX);
  EXPECT_EQ(json_parse("18446744073709551615").as_uint(), UINT64_MAX);
  EXPECT_EQ(json_serialize(json_parse("18446744073709551615")),
            "18446744073709551615");
}

TEST(JsonVal, NumericKindsCompareEqual) {
  // 3 parsed as int equals 3.0 parsed as double — axis digests must not
  // depend on whether the author wrote a decimal point.
  EXPECT_EQ(json_parse("3"), json_parse("3.0"));
  EXPECT_NE(json_parse("3"), json_parse("3.5"));
}

TEST(JsonVal, ObjectPreservesInsertionOrder) {
  const JsonValue v = json_parse(R"({"z": 1, "a": 2, "m": 3})");
  std::string keys;
  for (const auto& [k, val] : v.as_object().members()) keys += k;
  EXPECT_EQ(keys, "zam");
  EXPECT_EQ(json_serialize(v), R"({"z":1,"a":2,"m":3})");
}

TEST(JsonVal, ObjectEqualityIsOrderInsensitive) {
  EXPECT_EQ(json_parse(R"({"a":1,"b":2})"), json_parse(R"({"b":2,"a":1})"));
  EXPECT_NE(json_parse(R"({"a":1})"), json_parse(R"({"a":1,"b":2})"));
}

TEST(JsonVal, RejectsDuplicateKeys) {
  EXPECT_THROW(json_parse(R"({"a":1,"a":2})"), JsonError);
}

TEST(JsonVal, RejectsTrailingGarbageAndSyntaxErrors) {
  EXPECT_THROW(json_parse("{} x"), JsonError);
  EXPECT_THROW(json_parse("{"), JsonError);
  EXPECT_THROW(json_parse("[1,]"), JsonError);
  EXPECT_THROW(json_parse("{\"a\" 1}"), JsonError);
  EXPECT_THROW(json_parse(""), JsonError);
}

TEST(JsonVal, ErrorsCarryLineAndColumn) {
  try {
    json_parse("{\n  \"a\": ?\n}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("at 2:"), std::string::npos) << e.what();
  }
}

TEST(JsonVal, StringEscapes) {
  EXPECT_EQ(json_parse(R"("a\nb\t\"\\")").as_string(), "a\nb\t\"\\");
  // Surrogate pair: U+1F600 GRINNING FACE.
  EXPECT_EQ(json_parse(R"("😀")").as_string(), "\xF0\x9F\x98\x80");
  EXPECT_THROW(json_parse(R"("\ud83d")"), JsonError);  // lone high surrogate
}

TEST(JsonVal, RoundTripIsStable) {
  const std::string text =
      R"({"s":"x","i":-3,"u":42,"d":1.5,"b":true,"n":null,"a":[1,2],"o":{"k":0}})";
  const JsonValue v = json_parse(text);
  EXPECT_EQ(json_serialize(v), text);
  EXPECT_EQ(json_parse(json_serialize(v)), v);
}

TEST(JsonVal, PrettyPrintReparsesIdentically) {
  const JsonValue v = json_parse(R"({"a":[1,{"b":2}],"c":"x"})");
  const std::string pretty = json_serialize(v, 2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(json_parse(pretty), v);
}

TEST(JsonVal, AccessorsReportDottedPathOnTypeError) {
  const JsonValue v = json_parse(R"({"a": "str"})");
  try {
    v.as_object().find("a")->as_uint("scenario.a");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("scenario.a"), std::string::npos);
  }
}

TEST(JsonVal, MutableFindAllowsInPlaceUpdate) {
  JsonValue v = json_parse(R"({"env":{"t":""}})");
  JsonValue* env = v.as_object().find("env");
  ASSERT_NE(env, nullptr);
  env->as_object().set("t", "stamped");
  EXPECT_EQ(json_serialize(v), R"({"env":{"t":"stamped"}})");
}

}  // namespace
}  // namespace radiocast::exp
