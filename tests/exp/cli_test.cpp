// In-process tests of the radiocast CLI driver (src/cli/cli.hpp): command
// parsing, artifact emission, exit codes, and end-to-end reproducibility.
#include "cli/cli.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

namespace radiocast::cli {
namespace {

constexpr const char* kTinySpec = R"({
  "id": "cli_tiny",
  "topology": { "family": "geometric", "n": 16, "seed": 5, "radius": 0.5 },
  "algos": ["coded"],
  "k": [4],
  "seeds": 2,
  "seed_base": 42
})";

struct CliRun {
  int code = 0;
  std::string out, err;
};

CliRun run_cli(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  CliRun r;
  r.code = cli_main(args, out, err);
  r.out = out.str();
  r.err = err.str();
  return r;
}

std::string temp_dir(const std::string& leaf) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / leaf;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

TEST(Cli, NoArgsPrintsUsageAndFails) {
  const CliRun r = run_cli({});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.out.find("usage:"), std::string::npos);
}

TEST(Cli, HelpSucceeds) {
  EXPECT_EQ(run_cli({"--help"}).code, 0);
  EXPECT_EQ(run_cli({"help"}).code, 0);
}

TEST(Cli, UnknownCommandFails) {
  const CliRun r = run_cli({"frobnicate"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, VersionReportsBuildProvenance) {
  const CliRun r = run_cli({"version"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("compiler:"), std::string::npos);
}

TEST(Cli, ValidatePrintsCanonicalForm) {
  const std::string dir = temp_dir("cli_validate");
  write_file(dir + "/spec.json", kTinySpec);
  const CliRun r = run_cli({"validate", dir + "/spec.json"});
  EXPECT_EQ(r.code, 0);
  // Defaults are materialized in the canonical form.
  EXPECT_NE(r.out.find("\"payload_bytes\": 16"), std::string::npos) << r.out;
}

TEST(Cli, ValidateRejectsBadSpecWithExitCode1) {
  const std::string dir = temp_dir("cli_validate_bad");
  write_file(dir + "/spec.json", R"({"id": "x", "algos": ["quantum"]})");
  const CliRun r = run_cli({"validate", dir + "/spec.json"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("error:"), std::string::npos);
  EXPECT_EQ(run_cli({"validate", dir + "/nonexistent.json"}).code, 1);
}

TEST(Cli, RunEmitsResultsManifestAndReport) {
  const std::string dir = temp_dir("cli_run");
  write_file(dir + "/spec.json", kTinySpec);
  const CliRun r = run_cli({"run", dir + "/spec.json", "--out", dir});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(std::filesystem::exists(dir + "/cli_tiny.results.json"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/cli_tiny.manifest.json"));
  // The rendered report and the manifest digest are on stdout.
  EXPECT_NE(r.out.find("### cli_tiny"), std::string::npos);
  EXPECT_NE(r.out.find("fnv1a64:"), std::string::npos);
  // The emitted manifest carries a wall-clock stamp in its environment.
  const std::string manifest = read_file(dir + "/cli_tiny.manifest.json");
  EXPECT_NE(manifest.find("\"timestamp_utc\": \"2"), std::string::npos);
}

TEST(Cli, RunTwiceIsByteIdenticalModuloTimestamp) {
  const std::string dir = temp_dir("cli_rerun");
  write_file(dir + "/spec.json", kTinySpec);
  ASSERT_EQ(run_cli({"run", dir + "/spec.json", "--out", dir + "/a", "--quiet"}).code, 0);
  ASSERT_EQ(run_cli({"run", dir + "/spec.json", "--out", dir + "/b", "--quiet",
                     "--threads", "3"})
                .code,
            0);
  EXPECT_EQ(read_file(dir + "/a/cli_tiny.results.json"),
            read_file(dir + "/b/cli_tiny.results.json"));
  // Manifests agree line-for-line outside the environment block's
  // timestamp/elapsed/threads fields.
  const auto strip_env = [](const std::string& text) {
    std::istringstream in(text);
    std::string out, line;
    while (std::getline(in, line)) {
      if (line.find("\"timestamp_utc\"") != std::string::npos ||
          line.find("\"elapsed_seconds\"") != std::string::npos ||
          line.find("\"threads\"") != std::string::npos)
        continue;
      out += line + "\n";
    }
    return out;
  };
  EXPECT_EQ(strip_env(read_file(dir + "/a/cli_tiny.manifest.json")),
            strip_env(read_file(dir + "/b/cli_tiny.manifest.json")));
}

TEST(Cli, SeedsOverrideWidensTheGrid) {
  const std::string dir = temp_dir("cli_seeds");
  write_file(dir + "/spec.json", kTinySpec);
  ASSERT_EQ(
      run_cli({"run", dir + "/spec.json", "--out", dir, "--seeds", "3", "--quiet"}).code,
      0);
  const std::string manifest = read_file(dir + "/cli_tiny.manifest.json");
  EXPECT_NE(manifest.find("\"seeds\": 3"), std::string::npos);
}

TEST(Cli, ReportRendersAnEmittedResultsFile) {
  const std::string dir = temp_dir("cli_report");
  write_file(dir + "/spec.json", kTinySpec);
  ASSERT_EQ(run_cli({"run", dir + "/spec.json", "--out", dir, "--quiet"}).code, 0);
  const CliRun r = run_cli({"report", dir + "/cli_tiny.results.json"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("### cli_tiny"), std::string::npos);
  EXPECT_NE(r.out.find("r/pkt"), std::string::npos);
}

TEST(Cli, ListSummarizesScenarioDirectory) {
  const std::string dir = temp_dir("cli_list");
  write_file(dir + "/good.json", kTinySpec);
  write_file(dir + "/bad.json", "{nope");
  const CliRun r = run_cli({"list", dir});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("cli_tiny [kbroadcast, 1 cells x 2 seeds]"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("INVALID"), std::string::npos);
}

TEST(Cli, RunUnknownOptionFails) {
  const CliRun r = run_cli({"run", "spec.json", "--frobnicate"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown option"), std::string::npos);
}

}  // namespace
}  // namespace radiocast::cli
