// Telemetry determinism at the scenario level: the radiocast-telemetry-v1
// document and the flight trace must be byte-identical across thread
// budgets (the cross-trial reduction runs in trial order), the manifest's
// telemetry_digest must pin the document, and the per-cell latency columns
// must appear exactly on pipeline cells.
#include "exp/run.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exp/jsonval.hpp"
#include "exp/manifest.hpp"
#include "exp/scenario.hpp"

namespace radiocast::exp {
namespace {

ScenarioSpec telemetry_spec() {
  return parse_scenario(R"({
    "id": "tiny_telemetry",
    "topology": { "family": "geometric", "n": 16, "seed": 5, "radius": 0.5 },
    "algos": ["coded", "uncoded", "seq_bgi"],
    "k": [4],
    "seeds": 2,
    "seed_base": 42,
    "telemetry": { "enabled": true, "flight_paths": true }
  })");
}

std::vector<JsonValue> parse_lines(const std::string& jsonl) {
  std::vector<JsonValue> out;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    std::size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    if (end > start) out.push_back(json_parse(jsonl.substr(start, end - start)));
    start = end + 1;
  }
  return out;
}

std::size_t count_type(const std::vector<JsonValue>& lines, std::string_view t) {
  std::size_t n = 0;
  for (const JsonValue& l : lines)
    if (l.as_object().find("type")->as_string() == t) ++n;
  return n;
}

TEST(Telemetry, ThreadBudgetDoesNotPerturbTelemetry) {
  ScenarioSpec spec = telemetry_spec();
  spec.threads = 1;
  const ScenarioOutcome seq = run_scenario(spec);
  spec.threads = 4;
  const ScenarioOutcome par = run_scenario(spec);

  ASSERT_FALSE(seq.telemetry.empty());
  EXPECT_EQ(seq.telemetry, par.telemetry);
  ASSERT_FALSE(seq.flight_trace.empty());
  EXPECT_EQ(seq.flight_trace, par.flight_trace);
  EXPECT_EQ(json_serialize(seq.results), json_serialize(par.results));
  EXPECT_EQ(seq.manifest.as_object().find("telemetry_digest")->as_string(),
            par.manifest.as_object().find("telemetry_digest")->as_string());
}

TEST(Telemetry, DocumentShapeAndCellCoverage) {
  const ScenarioOutcome out = run_scenario(telemetry_spec());
  const auto lines = parse_lines(out.telemetry);
  ASSERT_GE(lines.size(), 2u);

  const JsonObject& header = lines.front().as_object();
  EXPECT_EQ(header.find("type")->as_string(), "header");
  EXPECT_EQ(header.find("format")->as_string(), "radiocast-telemetry-v1");
  EXPECT_EQ(header.find("scenario")->as_string(), "tiny_telemetry");
  EXPECT_EQ(header.find("trials")->as_uint(), 2u);
  EXPECT_TRUE(header.find("flight_paths")->as_bool());

  const JsonObject& summary = lines.back().as_object();
  EXPECT_EQ(summary.find("type")->as_string(), "summary");

  // Telemetry covers pipeline cells only: coded and uncoded, not seq_bgi.
  EXPECT_EQ(count_type(lines, "cell"), 2u);
  for (const JsonValue& l : lines) {
    const JsonObject& o = l.as_object();
    if (o.find("type")->as_string() != "cell") continue;
    const std::string& algo = o.find("algo")->as_string();
    EXPECT_TRUE(algo == "coded" || algo == "uncoded") << algo;
  }
  // One packet line per (cell, packet); k=4 for both cells.
  EXPECT_EQ(count_type(lines, "packet"), 8u);
  EXPECT_EQ(summary.find("packets")->as_uint(), 8u);
  EXPECT_GE(count_type(lines, "flight"), 1u);
  EXPECT_EQ(count_type(lines, "latency"), 2u);
}

TEST(Telemetry, ManifestDigestPinsTheDocument) {
  const ScenarioOutcome out = run_scenario(telemetry_spec());
  const std::string& digest =
      out.manifest.as_object().find("telemetry_digest")->as_string();
  EXPECT_EQ(digest, digest_string(out.telemetry));
  EXPECT_EQ(digest.rfind("fnv1a64:", 0), 0u) << digest;
}

TEST(Telemetry, DisabledTelemetryEmitsNothing) {
  ScenarioSpec spec = telemetry_spec();
  spec.telemetry = TelemetrySpec{};
  const ScenarioOutcome out = run_scenario(spec);
  EXPECT_TRUE(out.telemetry.empty());
  EXPECT_TRUE(out.flight_trace.empty());
  // The manifest key is always present; empty string when disabled.
  const JsonValue* digest = out.manifest.as_object().find("telemetry_digest");
  ASSERT_NE(digest, nullptr);
  EXPECT_EQ(digest->as_string(), "");
}

TEST(Telemetry, TracingDoesNotPerturbResults) {
  // Tracing is read-only: a traced run's result rows must match an
  // untraced run of the same spec on every shared column (the traced run
  // additionally carries the lat_* columns; the spec itself is part of
  // manifest identity, so the digests legitimately differ).
  ScenarioSpec plain = telemetry_spec();
  plain.telemetry = TelemetrySpec{};
  const ScenarioOutcome a = run_scenario(telemetry_spec());
  const ScenarioOutcome b = run_scenario(plain);

  auto strip_latency = [](const JsonValue& rows) {
    std::vector<JsonValue> out;
    for (const JsonValue& row : rows.as_array()) {
      JsonObject stripped;
      for (const auto& [key, value] : row.as_object().members())
        if (key.rfind("lat_", 0) != 0) stripped.set(key, value);
      out.emplace_back(std::move(stripped));
    }
    return JsonValue(std::move(out));
  };
  EXPECT_EQ(json_serialize(strip_latency(*a.results.as_object().find("rows"))),
            json_serialize(*b.results.as_object().find("rows")));
}

TEST(Telemetry, FlightPathsOffKeepsAggregatesDropsEvents) {
  ScenarioSpec spec = telemetry_spec();
  spec.telemetry.flight_paths = false;
  const ScenarioOutcome out = run_scenario(spec);
  ASSERT_FALSE(out.telemetry.empty());
  EXPECT_TRUE(out.flight_trace.empty());
  const auto lines = parse_lines(out.telemetry);
  EXPECT_FALSE(lines.front().as_object().find("flight_paths")->as_bool());
  EXPECT_EQ(count_type(lines, "flight"), 0u);
  // Aggregate lines survive without the event log.
  EXPECT_EQ(count_type(lines, "packet"), 8u);
  EXPECT_EQ(count_type(lines, "latency"), 2u);
}

TEST(Telemetry, LatencyColumnsOnlyOnPipelineCells) {
  const ScenarioOutcome out = run_scenario(telemetry_spec());
  const auto& rows = out.results.as_object().find("rows")->as_array();
  ASSERT_EQ(rows.size(), 3u);  // coded, uncoded, seq_bgi x k=4
  for (const JsonValue& row : rows) {
    const JsonObject& o = row.as_object();
    const std::string& algo = o.find("algo")->as_string();
    const bool pipeline = algo == "coded" || algo == "uncoded";
    for (const char* col : {"lat_p50", "lat_p90", "lat_p99", "lat_max"}) {
      const JsonValue* v = o.find(col);
      ASSERT_NE(v, nullptr) << col;
      EXPECT_EQ(v->is_null(), !pipeline) << algo << "." << col;
      if (pipeline) EXPECT_GE(v->as_uint(), 1u) << algo << "." << col;
    }
  }
}

}  // namespace
}  // namespace radiocast::exp
