// Stream-mode scenarios: schema round trip, digest compatibility with the
// closed modes (the "stream" block and arrival seeds exist only in stream
// mode), validation, and end-to-end reproducibility across thread budgets
// and shard counts.
#include <gtest/gtest.h>

#include <string>

#include "exp/manifest.hpp"
#include "exp/run.hpp"
#include "exp/scenario.hpp"

namespace radiocast::exp {
namespace {

constexpr const char* kStreamSpec = R"({
  "id": "t_stream",
  "mode": "stream",
  "topology": { "family": "geometric", "n": 16, "seed": 5, "radius": 0.5 },
  "seeds": 2,
  "seed_base": 300,
  "audit": true,
  "telemetry": true,
  "stream": {
    "rate": [0.5, 2.0],
    "process": "poisson",
    "buffer": [8],
    "policy": ["drop_new", "backpressure"],
    "batch_capacity": 8,
    "horizon_epochs": 3,
    "saturation_window": 2,
    "saturation_min_growth": 4
  }
})";

TEST(StreamScenario, ParsesStreamBlock) {
  const ScenarioSpec s = parse_scenario(kStreamSpec);
  EXPECT_EQ(s.mode, "stream");
  EXPECT_EQ(s.stream.rate, (std::vector<double>{0.5, 2.0}));
  EXPECT_EQ(s.stream.process, "poisson");
  EXPECT_EQ(s.stream.buffer, (std::vector<std::uint32_t>{8}));
  EXPECT_EQ(s.stream.policy,
            (std::vector<std::string>{"drop_new", "backpressure"}));
  EXPECT_EQ(s.stream.batch_capacity, 8u);
  EXPECT_EQ(s.stream.horizon_epochs, 3u);
  EXPECT_EQ(s.stream.saturation_window, 2u);
  EXPECT_EQ(s.stream.saturation_min_growth, 4u);
}

TEST(StreamScenario, RoundTripIsAFixedPoint) {
  const ScenarioSpec s1 = parse_scenario(kStreamSpec);
  const std::string canonical = serialize_scenario(s1);
  const ScenarioSpec s2 = parse_scenario(canonical);
  EXPECT_EQ(serialize_scenario(s2), canonical);
}

TEST(StreamScenario, StreamBlockOnlyLegalInStreamMode) {
  // A "stream" key under any other mode is a spec error, not a silently
  // ignored block — this is what lets closed-mode canonical forms (and
  // therefore every pinned digest) stay free of stream keys.
  EXPECT_THROW(parse_scenario(R"({"id":"x","stream":{"rate":[1.0]}})"),
               JsonError);
  EXPECT_THROW(
      parse_scenario(
          R"({"id":"x","mode":"dynamic","dynamic":{"load":[1.0]},"stream":{"rate":[1.0]}})"),
      JsonError);
}

TEST(StreamScenario, ClosedModeCanonicalFormHasNoStreamKeys) {
  // Digest-compatibility guarantee: adding the stream layer must not move
  // a byte in any closed-mode spec serialization.
  const ScenarioSpec kb = parse_scenario(R"({"id": "x"})");
  EXPECT_EQ(serialize_scenario(kb).find("stream"), std::string::npos);
  const ScenarioSpec dyn =
      parse_scenario(R"({"id":"x","mode":"dynamic","dynamic":{"load":[0.5]}})");
  EXPECT_EQ(serialize_scenario(dyn).find("stream"), std::string::npos);
  // And the stream canonical form does carry the block.
  const ScenarioSpec st = parse_scenario(kStreamSpec);
  EXPECT_NE(serialize_scenario(st).find("\"stream\""), std::string::npos);
}

TEST(StreamScenario, ValidationCatchesBadValues) {
  const auto with = [](const std::string& body) {
    return R"({"id":"x","mode":"stream","stream":{)" + body + "}}";
  };
  EXPECT_THROW(parse_scenario(with(R"("rate":[0.0])")), JsonError);
  EXPECT_THROW(parse_scenario(with(R"("rate":[32.0])")), JsonError);
  EXPECT_THROW(parse_scenario(with(R"("process":"uniform")")), JsonError);
  EXPECT_THROW(parse_scenario(with(R"("policy":["tail_drop"])")), JsonError);
  EXPECT_THROW(parse_scenario(with(R"("buffer":[0])")), JsonError);
  EXPECT_THROW(parse_scenario(with(R"("horizon_epochs":0)")), JsonError);
  EXPECT_THROW(parse_scenario(with(R"("saturation_window":0)")), JsonError);
  EXPECT_THROW(parse_scenario(with(R"("rates":[1.0])")), JsonError);  // unknown key
  // Closed-run ablation axes and the bitset kernel do not exist here.
  EXPECT_THROW(parse_scenario(R"({"id":"x","mode":"stream","engine":"bitset"})"),
               JsonError);
  EXPECT_THROW(parse_scenario(R"({"id":"x","mode":"stream","loss":[0.1]})"),
               JsonError);
  EXPECT_THROW(
      parse_scenario(R"({"id":"x","mode":"stream","collision_detection":[true]})"),
      JsonError);
  EXPECT_THROW(
      parse_scenario(
          R"({"id":"x","mode":"stream","telemetry":{"enabled":true,"flight_paths":true}})"),
      JsonError);
  // Defaults alone are a valid stream scenario.
  EXPECT_NO_THROW(parse_scenario(R"({"id":"x","mode":"stream"})"));
}

TEST(StreamScenario, ArrivalSeedStreamIsDisjointFromClosedStreams) {
  // arrival_seed gets its own offset lane: for any realistic trial count
  // it collides with none of the placement / run / fault formulas, so the
  // closed modes keep drawing exactly the numbers they always drew.
  const ScenarioSpec s = parse_scenario(kStreamSpec);
  EXPECT_EQ(arrival_seed(s, 0), 300u + 777u);
  EXPECT_EQ(arrival_seed(s, 4), 300u + 777u + 4u);
  for (int t = 0; t < 64; ++t) {
    EXPECT_NE(arrival_seed(s, t), placement_seed(s, t));
    EXPECT_NE(arrival_seed(s, t), run_seed(s, t));
    EXPECT_NE(arrival_seed(s, t), fault_seed(s, t));
  }
}

TEST(StreamScenario, RunIsByteIdenticalAcrossThreadsAndShards) {
  ScenarioSpec spec = parse_scenario(kStreamSpec);
  spec.threads = 1;
  spec.shards = 1;
  const ScenarioOutcome base = run_scenario(spec);
  spec.threads = 4;
  const ScenarioOutcome threaded = run_scenario(spec);
  spec.threads = 1;
  spec.shards = 2;
  const ScenarioOutcome sharded = run_scenario(spec);
  for (const ScenarioOutcome* other : {&threaded, &sharded}) {
    EXPECT_EQ(json_serialize(base.results), json_serialize(other->results));
    EXPECT_EQ(manifest_digest(base.manifest), manifest_digest(other->manifest));
    EXPECT_EQ(base.telemetry, other->telemetry);
  }
  ASSERT_FALSE(base.telemetry.empty());
}

TEST(StreamScenario, ManifestCarriesArrivalSeedsOnlyInStreamMode) {
  const ScenarioOutcome st = run_scenario(parse_scenario(kStreamSpec));
  const JsonObject& grid =
      st.manifest.as_object().find("seed_grid")->as_object();
  const JsonValue* arrival = grid.find("arrival_seeds");
  ASSERT_NE(arrival, nullptr);
  ASSERT_EQ(arrival->as_array().size(), 2u);
  EXPECT_EQ(arrival->as_array()[0].as_uint(), 300u + 777u);

  const ScenarioOutcome kb = run_scenario(parse_scenario(R"({
    "id": "t_closed", "algos": ["coded"], "k": [4], "seeds": 1,
    "topology": { "family": "geometric", "n": 16, "seed": 5, "radius": 0.5 }
  })"));
  const JsonObject& kb_grid =
      kb.manifest.as_object().find("seed_grid")->as_object();
  EXPECT_EQ(kb_grid.find("arrival_seeds"), nullptr);
}

TEST(StreamScenario, AuditedCellsReportNoViolations) {
  const ScenarioOutcome out = run_scenario(parse_scenario(kStreamSpec));
  EXPECT_TRUE(out.audit_violations.empty());
}

}  // namespace
}  // namespace radiocast::exp
