// Golden-file tests for `radiocast report` markdown rendering. The golden
// files live next to the fixtures in tests/exp/data/; regenerate with
//   build/src/radiocast report <fixture> --out <golden>
// after an intentional format change.
#include "exp/report.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "exp/jsonval.hpp"

#ifndef RADIOCAST_TEST_DATA_DIR
#define RADIOCAST_TEST_DATA_DIR "tests/exp/data"
#endif

namespace radiocast::exp {
namespace {

std::string slurp(const std::string& name) {
  const std::string path = std::string(RADIOCAST_TEST_DATA_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// write_file appends a trailing newline when missing; render_report does
/// not emit one, so normalize before comparing.
std::string with_trailing_newline(std::string s) {
  if (s.empty() || s.back() != '\n') s += '\n';
  return s;
}

TEST(ReportGolden, PivotModeMatchesGoldenFile) {
  const JsonValue results = json_parse(slurp("pivot_fixture.results.json"));
  EXPECT_EQ(with_trailing_newline(render_report(results)),
            slurp("pivot_fixture.golden.md"));
}

TEST(ReportGolden, PlainModeMatchesGoldenFile) {
  const JsonValue results = json_parse(slurp("plain_fixture.results.json"));
  EXPECT_EQ(with_trailing_newline(render_report(results)),
            slurp("plain_fixture.golden.md"));
}

TEST(Report, RejectsUnknownFormat) {
  const JsonValue bad = json_parse(R"({"format": "radiocast-results-v99"})");
  EXPECT_THROW(render_report(bad), JsonError);
  EXPECT_THROW(render_report(json_parse("{}")), JsonError);
}

TEST(Report, PivotFallsBackToPlainWhenAxisMissing) {
  // A pivot naming a non-axis column renders in plain mode rather than
  // throwing: the results file stays renderable even if the spec drifts.
  JsonValue results = json_parse(slurp("pivot_fixture.results.json"));
  JsonValue* report = results.as_object().find("report");
  ASSERT_NE(report, nullptr);
  report->as_object().set("pivot", "not_an_axis");
  const std::string md = render_report(results);
  EXPECT_NE(md.find("| algo | k |"), std::string::npos) << md;
}

}  // namespace
}  // namespace radiocast::exp
