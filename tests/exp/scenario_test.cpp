// Scenario spec parsing: round-trip, strict unknown-key rejection,
// validation, and the derived seed grid.
#include "exp/scenario.hpp"

#include <gtest/gtest.h>

namespace radiocast::exp {
namespace {

constexpr const char* kFullSpec = R"({
  "id": "t1",
  "title": "a title",
  "claim": "a claim",
  "mode": "kbroadcast",
  "topology": { "family": "geometric", "n": 32, "seed": 9, "radius": 0.4 },
  "knowledge": { "mode": "padded", "poly_power": 1.5, "d_factor": 2.0 },
  "placement": ["random", "spread_even"],
  "payload_bytes": 8,
  "algos": ["coded", "uncoded"],
  "k": [4, 16],
  "loss": [0.0, 0.1],
  "collision_detection": [false, true],
  "seeds": 2,
  "seed_base": 77,
  "max_rounds": 1000,
  "audit": true,
  "report": { "pivot": "algo", "values": ["r_per_pkt"], "ratio": "uncoded/coded:r_per_pkt" }
})";

TEST(Scenario, ParsesFullSpec) {
  const ScenarioSpec s = parse_scenario(kFullSpec);
  EXPECT_EQ(s.id, "t1");
  EXPECT_EQ(s.topology.family, "geometric");
  EXPECT_EQ(s.topology.n, 32u);
  EXPECT_DOUBLE_EQ(s.topology.radius, 0.4);
  EXPECT_EQ(s.knowledge.mode, "padded");
  EXPECT_EQ(s.placement, (std::vector<std::string>{"random", "spread_even"}));
  EXPECT_EQ(s.algos, (std::vector<std::string>{"coded", "uncoded"}));
  EXPECT_EQ(s.k, (std::vector<std::uint32_t>{4, 16}));
  EXPECT_EQ(s.loss, (std::vector<double>{0.0, 0.1}));
  EXPECT_EQ(s.collision_detection, (std::vector<bool>{false, true}));
  EXPECT_EQ(s.seeds, 2);
  EXPECT_EQ(s.seed_base, 77u);
  EXPECT_TRUE(s.audit);
  EXPECT_EQ(s.report.pivot, "algo");
  EXPECT_EQ(s.report.ratio, "uncoded/coded:r_per_pkt");
}

TEST(Scenario, RoundTripParseSerializeParse) {
  const ScenarioSpec s1 = parse_scenario(kFullSpec);
  const std::string canonical = serialize_scenario(s1);
  const ScenarioSpec s2 = parse_scenario(canonical);
  // The canonical form is a fixed point: serializing again is byte-equal.
  EXPECT_EQ(serialize_scenario(s2), canonical);
  EXPECT_EQ(scenario_to_json(s1), scenario_to_json(s2));
}

TEST(Scenario, MinimalSpecGetsDefaults) {
  const ScenarioSpec s = parse_scenario(R"({"id": "mini"})");
  EXPECT_EQ(s.mode, "kbroadcast");
  EXPECT_EQ(s.topology.family, "geometric");
  EXPECT_EQ(s.placement, std::vector<std::string>{"random"});
  EXPECT_EQ(s.algos, std::vector<std::string>{"coded"});
  EXPECT_EQ(s.k, std::vector<std::uint32_t>{16});
  EXPECT_EQ(s.seeds, 3);
  // Serialization materializes every default explicitly.
  const std::string canonical = serialize_scenario(s);
  EXPECT_NE(canonical.find("\"payload_bytes\": 16"), std::string::npos) << canonical;
}

TEST(Scenario, ScalarAxesPromoteToSingletonLists) {
  const ScenarioSpec s = parse_scenario(R"({"id": "x", "k": 8, "algos": "seq_bgi"})");
  EXPECT_EQ(s.k, std::vector<std::uint32_t>{8});
  EXPECT_EQ(s.algos, std::vector<std::string>{"seq_bgi"});
  const ScenarioSpec s2 = parse_scenario(R"({"id": "x", "loss": 0.05})");
  EXPECT_EQ(s2.loss, std::vector<double>{0.05});
}

TEST(Scenario, KnowledgeStringShorthand) {
  const ScenarioSpec s = parse_scenario(R"({"id": "x", "knowledge": "padded"})");
  EXPECT_EQ(s.knowledge.mode, "padded");
}

TEST(Scenario, RejectsUnknownTopLevelKey) {
  EXPECT_THROW(parse_scenario(R"({"id": "x", "kk": [4]})"), JsonError);
  try {
    parse_scenario(R"({"id": "x", "seed": 3})");  // typo for seed_base
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("seed"), std::string::npos);
  }
}

TEST(Scenario, RejectsUnknownNestedKeys) {
  EXPECT_THROW(parse_scenario(R"({"id":"x","topology":{"radius":0.3,"nn":4}})"),
               JsonError);
  EXPECT_THROW(parse_scenario(R"({"id":"x","knowledge":{"mode":"exact","pow":2}})"),
               JsonError);
  EXPECT_THROW(parse_scenario(R"({"id":"x","report":{"pivots":"algo"}})"), JsonError);
  EXPECT_THROW(parse_scenario(R"({"id":"x","dynamic":{"loads":[1.0]}})"), JsonError);
}

TEST(Scenario, ValidationCatchesBadValues) {
  EXPECT_THROW(parse_scenario(R"({"id": ""})"), JsonError);           // id required
  EXPECT_THROW(parse_scenario(R"({"id": "a b"})"), JsonError);        // id charset
  EXPECT_THROW(parse_scenario(R"({"id":"x","mode":"warp"})"), JsonError);
  EXPECT_THROW(parse_scenario(R"({"id":"x","algos":["quantum"]})"), JsonError);
  EXPECT_THROW(parse_scenario(R"({"id":"x","placement":["center"]})"), JsonError);
  EXPECT_THROW(parse_scenario(R"({"id":"x","k":[0]})"), JsonError);
  EXPECT_THROW(parse_scenario(R"({"id":"x","loss":[1.5]})"), JsonError);
  EXPECT_THROW(parse_scenario(R"({"id":"x","seeds":0})"), JsonError);
  EXPECT_THROW(parse_scenario(R"({"id":"x","topology":{"family":"moebius"}})"),
               JsonError);
}

TEST(Scenario, FaultAndAuditAxesRequirePipelineAlgos) {
  // seq_bgi/gossip run through run_algo, which has no fault/CD/audit taps;
  // silently dropping those axes would fabricate results.
  EXPECT_THROW(parse_scenario(R"({"id":"x","algos":["seq_bgi"],"loss":[0.1]})"),
               JsonError);
  EXPECT_THROW(
      parse_scenario(R"({"id":"x","algos":["gossip"],"collision_detection":[true]})"),
      JsonError);
  EXPECT_THROW(parse_scenario(R"({"id":"x","algos":["seq_bgi"],"audit":true})"),
               JsonError);
  // ...but the same axes are fine on the pipelines.
  EXPECT_NO_THROW(parse_scenario(R"({"id":"x","algos":["coded"],"loss":[0.1]})"));
}

TEST(Scenario, ThreadsIsExcludedFromCanonicalForm) {
  // threads is an execution knob: two runs differing only in thread budget
  // must produce identical spec digests.
  ScenarioSpec a = parse_scenario(R"({"id": "x"})");
  ScenarioSpec b = a;
  b.threads = 7;
  EXPECT_EQ(serialize_scenario(a), serialize_scenario(b));
}

TEST(Scenario, EngineKnobParsesValidatesAndSerializes) {
  // Default is scalar (every historical spec digest was produced by it).
  EXPECT_EQ(parse_scenario(R"({"id": "x"})").engine, "scalar");
  EXPECT_EQ(parse_scenario(R"({"id":"x","engine":"bitset"})").engine, "bitset");
  EXPECT_THROW(parse_scenario(R"({"id":"x","engine":"vector"})"), JsonError);

  // engine IS part of the spec identity, unlike threads: flipping it must
  // change the canonical form (and therefore the digest).
  const ScenarioSpec scalar = parse_scenario(R"({"id": "x"})");
  const ScenarioSpec bitset = parse_scenario(R"({"id":"x","engine":"bitset"})");
  EXPECT_NE(serialize_scenario(scalar), serialize_scenario(bitset));
  EXPECT_EQ(parse_scenario(serialize_scenario(bitset)).engine, "bitset");
}

TEST(Scenario, BitsetEngineRequiresPipelineAlgosAndStaticMode) {
  // seq_bgi/gossip run through run_algo (scalar-only), and the dynamic
  // runner drives its own loop; both must reject the bitset knob rather
  // than silently running scalar under a bitset-labelled digest.
  EXPECT_THROW(parse_scenario(R"({"id":"x","algos":["seq_bgi"],"engine":"bitset"})"),
               JsonError);
  EXPECT_THROW(parse_scenario(R"({"id":"x","algos":["gossip"],"engine":"bitset"})"),
               JsonError);
  EXPECT_THROW(
      parse_scenario(
          R"({"id":"x","mode":"dynamic","dynamic":{"load":[0.5]},"engine":"bitset"})"),
      JsonError);
  EXPECT_NO_THROW(
      parse_scenario(R"({"id":"x","algos":["coded","uncoded"],"engine":"bitset"})"));
}

TEST(Scenario, SeedGridIsPureFunctionOfSeedBase) {
  const ScenarioSpec s = parse_scenario(R"({"id": "x", "seed_base": 1000})");
  // Formulas are pinned to the historical bench_util ones.
  EXPECT_EQ(placement_seed(s, 0), 1000u);
  EXPECT_EQ(placement_seed(s, 2), 1000u + 17u * 2u);
  EXPECT_EQ(run_seed(s, 3), 1000u + 1000u + 3u);
  EXPECT_EQ(fault_seed(s, 1), 1000u + 555u + 1u);
}

}  // namespace
}  // namespace radiocast::exp
