#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace radiocast {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
  // min()/max() of an empty accumulator are the documented 0.0 sentinels,
  // not +/-infinity — callers must gate on empty().
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, EmptyClearsOnAdd) {
  RunningStats s;
  s.add(-3.0);
  EXPECT_FALSE(s.empty());
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), -3.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Population variance is 4; sample variance is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MatchesBatchOnRandomData) {
  Rng rng(1);
  RunningStats s;
  double sum = 0, sum2 = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_double() * 10 - 5;
    s.add(x);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = (sum2 - n * mean * mean) / (n - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-6);
}

TEST(RunningStats, PercentileNearestRankSemantics) {
  // Nearest-rank: rank = max(1, ceil(q * n)) over the sorted samples.
  RunningStats s;
  for (double x : {10.0, 20.0, 30.0, 40.0, 50.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);   // rank clamps up to 1
  EXPECT_DOUBLE_EQ(s.percentile(0.1), 10.0);   // ceil(0.5) = 1
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 30.0);   // ceil(2.5) = 3
  EXPECT_DOUBLE_EQ(s.percentile(0.9), 50.0);   // ceil(4.5) = 5
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(s.median(), s.percentile(0.5));
}

TEST(RunningStats, MedianOfEvenCountPicksLowerMiddle) {
  // Nearest-rank never interpolates: for n=4, rank ceil(2.0)=2.
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.75), 3.0);  // ceil(3.0) = 3
}

TEST(RunningStats, PercentileIgnoresInsertionOrder) {
  RunningStats asc, desc;
  for (int i = 1; i <= 9; ++i) asc.add(i);
  for (int i = 9; i >= 1; --i) desc.add(i);
  for (double q : {0.0, 0.25, 0.5, 0.9, 1.0})
    EXPECT_DOUBLE_EQ(asc.percentile(q), desc.percentile(q)) << q;
}

TEST(RunningStats, PercentileEmptyIsZero) {
  RunningStats s;
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.median(), 0.0);
  EXPECT_TRUE(s.percentile_exact());  // vacuously exact
}

TEST(RunningStats, PercentileExactWindowIs64Samples) {
  RunningStats s;
  for (std::size_t i = 0; i < RunningStats::kPercentileBuffer; ++i)
    s.add(static_cast<double>(i));
  EXPECT_TRUE(s.percentile_exact());
  // Exact max while the buffer covers everything.
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 63.0);
  s.add(1000.0);  // sample 65: the buffer stops growing
  EXPECT_FALSE(s.percentile_exact());
  // Percentiles now describe the first-64 prefix; the moments stay exact.
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 63.0);
  EXPECT_DOUBLE_EQ(s.max(), 1000.0);
  EXPECT_EQ(s.count(), 65u);
}

TEST(SampleSet, QuantilesExact) {
  SampleSet s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(SampleSet, QuantileInterpolates) {
  SampleSet s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.1), 1.0);
}

TEST(SampleSet, AddAfterQuantileStillSorted) {
  SampleSet s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(SampleSet, MeanStddev) {
  SampleSet s;
  for (double x : {2.0, 4.0, 6.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
}

TEST(BernoulliCounter, RateAndMonotonicBounds) {
  BernoulliCounter c;
  EXPECT_EQ(c.rate(), 0.0);
  EXPECT_EQ(c.wilson_lower95(), 0.0);
  EXPECT_EQ(c.wilson_upper95(), 1.0);
  for (int i = 0; i < 90; ++i) c.add(true);
  for (int i = 0; i < 10; ++i) c.add(false);
  EXPECT_DOUBLE_EQ(c.rate(), 0.9);
  EXPECT_LT(c.wilson_lower95(), 0.9);
  EXPECT_GT(c.wilson_upper95(), 0.9);
  EXPECT_GT(c.wilson_lower95(), 0.8);
  EXPECT_LT(c.wilson_upper95(), 0.97);
}

TEST(BernoulliCounter, AllSuccesses) {
  BernoulliCounter c;
  for (int i = 0; i < 1000; ++i) c.add(true);
  EXPECT_DOUBLE_EQ(c.rate(), 1.0);
  EXPECT_GT(c.wilson_lower95(), 0.99);
  EXPECT_DOUBLE_EQ(c.wilson_upper95(), 1.0);
}

TEST(LinearFit, ExactLine) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {3, 5, 7, 9, 11};  // y = 1 + 2x
  const LinearFit f = fit_linear(x, y);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(LinearFit, NoisyLineRecoversSlope) {
  Rng rng(7);
  std::vector<double> x, y;
  for (int i = 0; i < 500; ++i) {
    const double xv = static_cast<double>(i);
    x.push_back(xv);
    y.push_back(4.0 + 0.5 * xv + (rng.next_double() - 0.5));
  }
  const LinearFit f = fit_linear(x, y);
  EXPECT_NEAR(f.slope, 0.5, 0.01);
  EXPECT_GT(f.r2, 0.99);
}

TEST(LinearFit, DegenerateInput) {
  EXPECT_EQ(fit_linear({}, {}).slope, 0.0);
  EXPECT_EQ(fit_linear({1.0}, {2.0}).slope, 0.0);
  // All-equal x: no slope defined.
  const LinearFit f = fit_linear({2.0, 2.0, 2.0}, {1.0, 2.0, 3.0});
  EXPECT_EQ(f.slope, 0.0);
}

}  // namespace
}  // namespace radiocast
