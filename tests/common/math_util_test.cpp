#include "common/math_util.hpp"

#include <gtest/gtest.h>

namespace radiocast {
namespace {

TEST(MathUtil, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(8), 3u);
  EXPECT_EQ(ceil_log2(9), 4u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
  EXPECT_EQ(ceil_log2(1ULL << 62), 62u);
}

TEST(MathUtil, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4), 2u);
  EXPECT_EQ(floor_log2(1023), 9u);
  EXPECT_EQ(floor_log2(1024), 10u);
}

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 3), 0u);
  EXPECT_EQ(ceil_div(1, 3), 1u);
  EXPECT_EQ(ceil_div(3, 3), 1u);
  EXPECT_EQ(ceil_div(4, 3), 2u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
  EXPECT_EQ(ceil_div(10, 3), 4u);
}

TEST(MathUtil, Log2AtLeastOne) {
  EXPECT_EQ(log2_at_least_one(1), 1u);
  EXPECT_EQ(log2_at_least_one(2), 1u);
  EXPECT_EQ(log2_at_least_one(3), 2u);
  EXPECT_EQ(log2_at_least_one(256), 8u);
}

TEST(MathUtil, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(4), 4u);
  EXPECT_EQ(next_pow2(5), 8u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

class CeilLog2Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CeilLog2Property, InverseOfPow) {
  const std::uint64_t x = GetParam();
  const std::uint32_t l = ceil_log2(x);
  // 2^(l-1) < x <= 2^l
  EXPECT_GE(1ULL << l, x);
  if (l > 0) {
    EXPECT_LT(1ULL << (l - 1), x);
  }
  // next_pow2 agrees.
  EXPECT_EQ(next_pow2(x), 1ULL << l);
  // floor and ceil sandwich.
  EXPECT_LE(floor_log2(x), l);
  EXPECT_LE(l, floor_log2(x) + 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CeilLog2Property,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32,
                                           33, 63, 64, 65, 127, 128, 129, 255, 256,
                                           1000, 1024, 4095, 4096, 1000000));

}  // namespace
}  // namespace radiocast
