// Monte-Carlo validation of the paper's Appendix-A tail bounds: the
// measured tail probability must not exceed the stated bound (with a
// small sampling-noise allowance), and the bounds must not be vacuous.
#include "common/bounds.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace radiocast {
namespace {

TEST(Lemma1, TrialCountFormula) {
  EXPECT_EQ(lemma1_trials(1.0, 1.0, 0.0), 3u);
  EXPECT_EQ(lemma1_trials(0.5, 1.0, 0.0), 6u);
  EXPECT_EQ(lemma1_trials(0.5, 2.0, 3.0), 24u);
  EXPECT_EQ(lemma1_trials(0.1, 1.0, 1.0), 50u);
}

class Lemma1MonteCarlo
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(Lemma1MonteCarlo, TailIsBelowBound) {
  const auto [p, d, tau] = GetParam();
  const std::uint64_t r = lemma1_trials(p, d, tau);
  const double bound = lemma1_bound(tau);
  Rng rng(static_cast<std::uint64_t>(p * 1000 + d * 31 + tau * 7));
  BernoulliCounter failures;
  const int experiments = 20000;
  for (int e = 0; e < experiments; ++e) {
    std::uint64_t successes = 0;
    for (std::uint64_t q = 0; q < r && successes < static_cast<std::uint64_t>(d);
         ++q) {
      if (rng.next_bool(p)) ++successes;
    }
    failures.add(successes < static_cast<std::uint64_t>(d));
  }
  // The Wilson lower bound of the measured failure rate must not exceed
  // the lemma's bound.
  EXPECT_LE(failures.wilson_lower95(), bound)
      << "p=" << p << " d=" << d << " tau=" << tau;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Lemma1MonteCarlo,
    ::testing::Values(std::make_tuple(0.5, 1.0, 1.0), std::make_tuple(0.5, 5.0, 2.0),
                      std::make_tuple(0.1, 3.0, 1.0), std::make_tuple(0.9, 10.0, 3.0),
                      std::make_tuple(0.25, 2.0, 0.5)));

TEST(Lemma2, ThresholdFormula) {
  // Single geometric with p = 1/2: mu = 2, threshold = 4 + 8 ln(1/eps).
  const double t = lemma2_threshold({0.5}, 0.1);
  EXPECT_NEAR(t, 4.0 + 8.0 * std::log(10.0), 1e-9);
}

class Lemma2MonteCarlo : public ::testing::TestWithParam<double> {};

TEST_P(Lemma2MonteCarlo, TailIsBelowEps) {
  const double eps = GetParam();
  // Mixed geometric parameters, as in the Lemma 3 proof's pivot waits.
  const std::vector<double> ps = {0.5, 0.75, 0.875, 0.9375, 0.96875};
  const double threshold = lemma2_threshold(ps, eps);
  Rng rng(static_cast<std::uint64_t>(eps * 1e6));
  BernoulliCounter exceed;
  const int experiments = 20000;
  for (int e = 0; e < experiments; ++e) {
    double total = 0;
    for (double p : ps) {
      // Sample a geometric (number of trials to first success).
      int x = 1;
      while (!rng.next_bool(p)) ++x;
      total += x;
    }
    exceed.add(total >= threshold);
  }
  EXPECT_LE(exceed.wilson_lower95(), eps);
}

INSTANTIATE_TEST_SUITE_P(Eps, Lemma2MonteCarlo, ::testing::Values(0.5, 0.1, 0.01));

TEST(Lemma2, BoundIsNotVacuous) {
  // The threshold should be within a small constant factor of the mean for
  // moderate eps — i.e. the lemma actually constrains the protocol
  // schedule lengths rather than being astronomically loose.
  const std::vector<double> ps(10, 0.5);
  const double mu = 20.0;
  EXPECT_LT(lemma2_threshold(ps, 0.1), 4.0 * mu);
}

TEST(Lemma3, RowFormula) {
  EXPECT_EQ(lemma3_rows(10, std::exp(-1.0)), 32u);  // 2*12 + 8
  EXPECT_GE(lemma3_rows(8, 0.01), 2u * 10 + 36u);
}

TEST(Lemma3, MatchesMatrixTestThreshold) {
  // Consistency with the Monte-Carlo in gf2/matrix_test.cpp.
  const std::uint64_t l = lemma3_rows(10, 0.05);
  EXPECT_GE(l, 24u + 23u);
  EXPECT_LE(l, 24u + 25u);
}

}  // namespace
}  // namespace radiocast
