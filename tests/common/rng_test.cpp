#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace radiocast {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedResetsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a());
  a.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), first[i]);
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(99);
  Rng c1 = parent.split();
  Rng c2 = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1() == c2()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitIsDeterministic) {
  Rng p1(5), p2(5);
  Rng c1 = p1.split();
  Rng c2 = p2.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c1(), c2());
}

TEST(Rng, NextBelowInRange) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 40)}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(13);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 0.08 * kDraws / kBuckets);
  }
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.next_in_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBoolExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, NextBoolMatchesProbability) {
  Rng rng(29);
  const double p = 0.3;
  int hits = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) hits += rng.next_bool(p) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, p, 0.02);
}

TEST(Rng, NextBitBalanced) {
  Rng rng(31);
  int ones = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) ones += rng.next_bit() ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(ones) / trials, 0.5, 0.02);
}

TEST(Splitmix, KnownNonDegenerate) {
  std::uint64_t s = 0;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_NE(a, 0u);
}

}  // namespace
}  // namespace radiocast
