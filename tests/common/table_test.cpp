#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace radiocast {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.row().add("alpha").add(std::int64_t{1});
  t.row().add("b").add(std::int64_t{12345});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 12345 |"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("|-------|"), std::string::npos);
}

TEST(Table, DoubleFormatting) {
  Table t({"x"});
  t.row().add(3.14159, 2);
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("3.14"), std::string::npos);
}

TEST(Table, MissingCellsRenderEmpty) {
  Table t({"a", "b"});
  t.row().add("only");
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("| only |"), std::string::npos);
}

TEST(Table, NumRows) {
  Table t({"a"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.row().add("x");
  t.row().add("y");
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, MetaLineFormat) {
  std::ostringstream out;
  print_meta(out, "graph", "gnp n=64");
  EXPECT_EQ(out.str(), "# graph: gnp n=64\n");
}

}  // namespace
}  // namespace radiocast
