// ThreadPool: the fan-out substrate of the Monte Carlo driver.
#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

namespace radiocast {
namespace {

TEST(ThreadPoolTest, DefaultConcurrencyIsAtLeastOne) {
  EXPECT_GE(ThreadPool::default_concurrency(), 1u);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, EachTaskWritesItsOwnSlot) {
  ThreadPool pool(4);
  std::vector<int> out(256, -1);
  for (int i = 0; i < 256; ++i) {
    pool.submit([&out, i] { out[static_cast<std::size_t>(i)] = i * i; });
  }
  pool.wait_idle();
  for (int i = 0; i < 256; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
}

TEST(ThreadPoolTest, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i) pool.submit([&count] { ++count; });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 10 * (batch + 1));
  }
}

TEST(ThreadPoolTest, WaitIdleWithEmptyQueueReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++count;
      });
    }
    // No wait_idle: the destructor must still run everything.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsTasksInSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 20; ++i) pool.submit([&order, i] { order.push_back(i); });
  pool.wait_idle();
  std::vector<int> expect(20);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

TEST(ThreadPoolTest, UsesMultipleWorkers) {
  // With 4 workers and tasks that block until all workers arrive, the
  // barrier can only clear if tasks genuinely run concurrently.
  constexpr unsigned kWorkers = 4;
  ThreadPool pool(kWorkers);
  std::atomic<unsigned> arrived{0};
  std::set<std::thread::id> ids;
  std::mutex mu;
  for (unsigned i = 0; i < kWorkers; ++i) {
    pool.submit([&] {
      {
        std::lock_guard<std::mutex> lock(mu);
        ids.insert(std::this_thread::get_id());
      }
      ++arrived;
      while (arrived.load() < kWorkers) std::this_thread::yield();
    });
  }
  pool.wait_idle();
  EXPECT_EQ(ids.size(), kWorkers);
}

}  // namespace
}  // namespace radiocast
