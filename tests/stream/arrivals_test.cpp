// Arrival-schedule determinism and process statistics. The key discipline
// under test: schedules are a pure function of (n, config, horizon), and
// each node's schedule comes from its own child stream, so a node's
// arrivals do not move when the network around it changes size.
#include "stream/arrivals.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "radio/message.hpp"

namespace radiocast::stream {
namespace {

ArrivalConfig poisson_cfg(double rate, std::uint64_t seed) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kPoisson;
  cfg.rate = rate;
  cfg.seed = seed;
  return cfg;
}

std::map<radio::NodeId, std::vector<core::Arrival>> by_node(
    const std::vector<core::Arrival>& schedule) {
  std::map<radio::NodeId, std::vector<core::Arrival>> out;
  for (const core::Arrival& a : schedule) out[a.node].push_back(a);
  return out;
}

TEST(Arrivals, DeterministicGivenConfig) {
  const ArrivalConfig cfg = poisson_cfg(0.05, 7);
  const auto a = make_arrival_schedule(8, cfg, 500);
  const auto b = make_arrival_schedule(8, cfg, 500);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].round, b[i].round);
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].packet.id, b[i].packet.id);
    EXPECT_EQ(a[i].packet.payload, b[i].packet.payload);
  }
}

TEST(Arrivals, SeedChangesSchedule) {
  const auto a = make_arrival_schedule(8, poisson_cfg(0.05, 7), 500);
  const auto b = make_arrival_schedule(8, poisson_cfg(0.05, 8), 500);
  bool differs = a.size() != b.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i)
    differs = a[i].round != b[i].round || a[i].node != b[i].node;
  EXPECT_TRUE(differs);
}

TEST(Arrivals, SortedByRoundWithStableNodeOrderTies) {
  const auto schedule = make_arrival_schedule(16, poisson_cfg(0.2, 3), 300);
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_LE(schedule[i - 1].round, schedule[i].round);
    if (schedule[i - 1].round == schedule[i].round) {
      EXPECT_LE(schedule[i - 1].node, schedule[i].node);
    }
  }
}

TEST(Arrivals, IdsUniqueAndEncodeOrigin) {
  const auto schedule = make_arrival_schedule(6, poisson_cfg(0.1, 11), 400);
  std::set<radio::PacketId> ids;
  for (const core::Arrival& a : schedule) {
    EXPECT_TRUE(ids.insert(a.packet.id).second) << "duplicate id";
    EXPECT_EQ(radio::packet_origin(a.packet.id), a.node);
    EXPECT_LT(a.round, 400u);
    EXPECT_EQ(a.packet.payload.size(), 16u);
  }
}

TEST(Arrivals, ZeroRateAndZeroHorizonAreEmpty) {
  EXPECT_TRUE(make_arrival_schedule(8, poisson_cfg(0.0, 1), 100).empty());
  EXPECT_TRUE(make_arrival_schedule(8, poisson_cfg(0.5, 1), 0).empty());
}

TEST(Arrivals, NodeStreamsIndependentOfNetworkSize) {
  // Node v's schedule is drawn from its own split child, so growing the
  // network must not move any existing node's arrivals. This is the
  // property that keeps per-node workloads comparable across topologies.
  const ArrivalConfig cfg = poisson_cfg(0.08, 21);
  const auto small = by_node(make_arrival_schedule(4, cfg, 600));
  const auto big = by_node(make_arrival_schedule(12, cfg, 600));
  for (radio::NodeId v = 0; v < 4; ++v) {
    const auto& s = small.at(v);
    const auto& b = big.at(v);
    ASSERT_EQ(s.size(), b.size()) << "node " << v;
    for (std::size_t i = 0; i < s.size(); ++i) {
      EXPECT_EQ(s[i].round, b[i].round);
      EXPECT_EQ(s[i].packet.id, b[i].packet.id);
    }
  }
}

TEST(Arrivals, PoissonCountNearExpectation) {
  // n * rate * horizon = 16 * 0.05 * 2000 = 1600 expected arrivals;
  // the std dev is ~40, so +-12.5% is a >5-sigma band.
  const auto schedule = make_arrival_schedule(16, poisson_cfg(0.05, 33), 2000);
  const double expected = 16 * 0.05 * 2000;
  EXPECT_GT(static_cast<double>(schedule.size()), expected * 0.875);
  EXPECT_LT(static_cast<double>(schedule.size()), expected * 1.125);
}

TEST(Arrivals, PeriodicSpacingIsExact) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kPeriodic;
  cfg.rate = 0.1;  // period 10
  cfg.seed = 5;
  const auto per_node = by_node(make_arrival_schedule(6, cfg, 500));
  ASSERT_EQ(per_node.size(), 6u);
  for (const auto& [node, list] : per_node) {
    ASSERT_GE(list.size(), 2u) << "node " << node;
    EXPECT_LT(list.front().round, 10u);  // phase within one period
    for (std::size_t i = 1; i < list.size(); ++i)
      EXPECT_EQ(list[i].round - list[i - 1].round, 10u);
  }
}

TEST(Arrivals, KindNamesRoundTrip) {
  for (ArrivalKind kind : {ArrivalKind::kPoisson, ArrivalKind::kPeriodic}) {
    ArrivalKind parsed{};
    ASSERT_TRUE(arrival_kind_from_string(arrival_kind_name(kind), parsed));
    EXPECT_EQ(parsed, kind);
  }
  ArrivalKind unused{};
  EXPECT_FALSE(arrival_kind_from_string("uniform", unused));
  EXPECT_FALSE(arrival_kind_from_string("", unused));
}

}  // namespace
}  // namespace radiocast::stream
