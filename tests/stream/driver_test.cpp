// End-to-end open-system runs: determinism, shard invariance, audit
// cleanliness, and the policy-visible behaviors (drops vs backpressure,
// saturation beyond the knee).
#include "stream/driver.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace radiocast::stream {
namespace {

graph::Graph test_graph() {
  Rng grng(11);
  return graph::make_random_geometric(16, 0.45, grng);
}

StreamConfig base_cfg(const graph::Graph& g, double load,
                      std::uint32_t epochs = 6) {
  core::KBroadcastConfig kcfg;
  kcfg.know = radio::Knowledge::exact(g);
  StreamConfig cfg;
  cfg.dyn.rc = core::resolve(kcfg);
  cfg.dyn.batch_capacity = 16;
  cfg.arrivals.rate = per_node_rate(cfg.dyn, g.num_nodes(), load);
  cfg.arrivals.seed = 77;
  cfg.buffer_capacity = 64;
  cfg.saturation.window = 2;
  cfg.saturation.min_growth = 8;
  cfg.horizon = cfg.dyn.rc.stage3_start() +
                static_cast<std::uint64_t>(epochs) * epoch_estimate_rounds(cfg.dyn);
  cfg.seed = 42;
  return cfg;
}

void expect_same(const StreamResult& a, const StreamResult& b) {
  EXPECT_EQ(a.arrivals_scheduled, b.arrivals_scheduled);
  EXPECT_EQ(a.delivered_everywhere, b.delivered_everywhere);
  EXPECT_EQ(a.queue.offered, b.queue.offered);
  EXPECT_EQ(a.queue.admitted, b.queue.admitted);
  EXPECT_EQ(a.queue.dropped, b.queue.dropped);
  EXPECT_EQ(a.queue.backpressured, b.queue.backpressured);
  EXPECT_EQ(a.queue.peak_depth, b.queue.peak_depth);
  EXPECT_EQ(a.in_system_end, b.in_system_end);
  EXPECT_EQ(a.saturated, b.saturated);
  EXPECT_EQ(a.saturation_onset_round, b.saturation_onset_round);
  EXPECT_EQ(a.epochs_completed, b.epochs_completed);
  EXPECT_EQ(a.latency.count(), b.latency.count());
  EXPECT_EQ(a.latency.sum(), b.latency.sum());
  EXPECT_EQ(a.latency.max(), b.latency.max());
  EXPECT_EQ(a.counters.transmissions, b.counters.transmissions);
  EXPECT_EQ(a.counters.deliveries, b.counters.deliveries);
  EXPECT_EQ(a.counters.collision_slots, b.counters.collision_slots);
}

TEST(StreamDriver, RepeatedRunsAreIdentical) {
  const graph::Graph g = test_graph();
  const StreamConfig cfg = base_cfg(g, 0.5);
  expect_same(run_stream(g, cfg), run_stream(g, cfg));
}

TEST(StreamDriver, ShardCountDoesNotPerturbResults) {
  const graph::Graph g = test_graph();
  StreamConfig cfg = base_cfg(g, 1.0);
  const StreamResult unsharded = run_stream(g, cfg);
  cfg.shards = 3;
  expect_same(unsharded, run_stream(g, cfg));
}

TEST(StreamDriver, AuditedRunIsCleanAndBitIdentical) {
  const graph::Graph g = test_graph();
  StreamConfig cfg = base_cfg(g, 1.0);
  const StreamResult plain = run_stream(g, cfg);
  cfg.audit = true;
  const StreamResult audited = run_stream(g, cfg);
  EXPECT_TRUE(audited.audited);
  EXPECT_EQ(audited.audit_violations, 0u) << audited.audit_summary;
  EXPECT_EQ(audited.audit_summary, "clean");
  // The auditor is read-only: it must not perturb a single outcome.
  expect_same(plain, audited);
}

TEST(StreamDriver, LowLoadDeliversWithoutSaturating) {
  const graph::Graph g = test_graph();
  const StreamConfig cfg = base_cfg(g, 0.25);
  const StreamResult r = run_stream(g, cfg);
  EXPECT_GT(r.arrivals_scheduled, 0u);
  EXPECT_GT(r.delivered_everywhere, 0u);
  EXPECT_EQ(r.queue.dropped, 0u);
  EXPECT_FALSE(r.saturated);
  EXPECT_GT(r.epochs_completed, 0u);
  EXPECT_GT(r.throughput, 0.0);
  EXPECT_GT(r.normalized_throughput, r.throughput);  // x log2(n_hat) > 1
}

TEST(StreamDriver, OverloadSaturatesAndBacklogGrows) {
  const graph::Graph g = test_graph();
  StreamConfig cfg = base_cfg(g, 4.0, /*epochs=*/8);
  const StreamResult r = run_stream(g, cfg);
  EXPECT_TRUE(r.saturated);
  EXPECT_GT(r.saturation_onset_round, 0u);
  EXPECT_LT(r.saturation_onset_round, cfg.horizon);
  // Far more offered than the pipeline can carry: backlog at the horizon.
  EXPECT_GT(r.in_system_end, r.queue.dropped == 0 ? 16u : 0u);
  EXPECT_LT(r.delivered_everywhere, r.arrivals_scheduled);
}

TEST(StreamDriver, BackpressureNeverDropsTinyBufferDoes) {
  const graph::Graph g = test_graph();
  StreamConfig cfg = base_cfg(g, 4.0, /*epochs=*/8);
  cfg.buffer_capacity = 4;

  cfg.policy = BufferPolicy::kBackpressure;
  const StreamResult bp = run_stream(g, cfg);
  EXPECT_EQ(bp.queue.dropped, 0u);
  EXPECT_GT(bp.queue.backpressured, 0u);
  EXPECT_EQ(bp.queue.offered, bp.arrivals_scheduled);

  cfg.policy = BufferPolicy::kDropNew;
  const StreamResult dn = run_stream(g, cfg);
  EXPECT_GT(dn.queue.dropped, 0u);
  EXPECT_EQ(dn.queue.backpressured, 0u);
  EXPECT_EQ(dn.queue.admitted + dn.queue.dropped, dn.queue.offered);
}

TEST(StreamDriver, AccountingInvariantsHold) {
  const graph::Graph g = test_graph();
  const StreamConfig cfg = base_cfg(g, 1.0);
  const StreamResult r = run_stream(g, cfg);
  EXPECT_EQ(r.n, g.num_nodes());
  EXPECT_EQ(r.horizon, cfg.horizon);
  EXPECT_EQ(r.queue.offered, r.arrivals_scheduled);
  // One latency observation per fully delivered packet.
  EXPECT_EQ(r.latency.count(), r.delivered_everywhere);
  EXPECT_DOUBLE_EQ(
      r.throughput,
      static_cast<double>(r.delivered_everywhere) / static_cast<double>(cfg.horizon));
  // Ledger totals are exact even though rows are capped.
  EXPECT_EQ(r.ledger.totals().samples,
            r.ledger.rows().size() + r.ledger.dropped_rows());
  EXPECT_GE(r.ledger.totals().samples, static_cast<std::uint64_t>(r.epochs_completed));
}

TEST(StreamDriver, PerNodeRateMatchesOfferedLoadSemantics) {
  const graph::Graph g = test_graph();
  const StreamConfig cfg = base_cfg(g, 1.0);
  const double epoch = static_cast<double>(epoch_estimate_rounds(cfg.dyn));
  // load 1.0 <=> batch_capacity packets network-wide per nominal epoch.
  EXPECT_NEAR(cfg.arrivals.rate * g.num_nodes() * epoch,
              static_cast<double>(cfg.dyn.resolved_capacity()), 1e-9);
  EXPECT_GT(epoch_estimate_rounds(cfg.dyn), cfg.dyn.dissemination_window());
}

}  // namespace
}  // namespace radiocast::stream
