// SourceQueue policy semantics and SaturationDetector behavior on
// synthetic depth traces.
#include "stream/queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "radio/message.hpp"

namespace radiocast::stream {
namespace {

radio::Packet pkt(std::uint32_t seq) {
  radio::Packet p;
  p.id = radio::make_packet_id(0, seq);
  return p;
}

std::vector<std::uint32_t> seqs(const std::vector<radio::Packet>& packets) {
  std::vector<std::uint32_t> out;
  for (const radio::Packet& p : packets)
    out.push_back(static_cast<std::uint32_t>(p.id & 0xffffffffu));
  return out;
}

TEST(SourceQueue, AdmitsUpToCapacity) {
  SourceQueue q(3, BufferPolicy::kDropNew);
  EXPECT_TRUE(q.offer(pkt(0)));
  EXPECT_TRUE(q.offer(pkt(1)));
  EXPECT_TRUE(q.offer(pkt(2)));
  EXPECT_EQ(q.buffered(), 3u);
  EXPECT_EQ(q.stats().offered, 3u);
  EXPECT_EQ(q.stats().admitted, 3u);
  EXPECT_EQ(q.stats().dropped, 0u);
}

TEST(SourceQueue, DropNewRejectsArrivalWhenFull) {
  SourceQueue q(2, BufferPolicy::kDropNew);
  q.offer(pkt(0));
  q.offer(pkt(1));
  EXPECT_FALSE(q.offer(pkt(2)));
  EXPECT_EQ(q.stats().dropped, 1u);
  EXPECT_EQ(seqs(q.drain()), (std::vector<std::uint32_t>{0, 1}));
}

TEST(SourceQueue, DropOldEvictsOldestAndKeepsArrival) {
  SourceQueue q(2, BufferPolicy::kDropOld);
  q.offer(pkt(0));
  q.offer(pkt(1));
  EXPECT_FALSE(q.offer(pkt(2)));  // evicts 0, admits 2
  EXPECT_EQ(q.stats().dropped, 1u);
  EXPECT_EQ(q.stats().admitted, 3u);
  EXPECT_EQ(seqs(q.drain()), (std::vector<std::uint32_t>{1, 2}));
}

TEST(SourceQueue, BackpressureParksOverflowAndRefillsOldestFirst) {
  SourceQueue q(2, BufferPolicy::kBackpressure);
  for (std::uint32_t i = 0; i < 5; ++i) q.offer(pkt(i));
  EXPECT_EQ(q.buffered(), 2u);
  EXPECT_EQ(q.held_back(), 3u);
  EXPECT_EQ(q.depth(), 5u);
  EXPECT_EQ(q.stats().dropped, 0u);
  EXPECT_EQ(q.stats().backpressured, 3u);
  // First drain hands over the buffer and pulls the two oldest parked
  // packets forward; nothing is ever lost.
  EXPECT_EQ(seqs(q.drain()), (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(q.buffered(), 2u);
  EXPECT_EQ(q.held_back(), 1u);
  EXPECT_EQ(seqs(q.drain()), (std::vector<std::uint32_t>{2, 3}));
  EXPECT_EQ(seqs(q.drain()), (std::vector<std::uint32_t>{4}));
  EXPECT_EQ(q.depth(), 0u);
  EXPECT_EQ(q.stats().admitted, 5u);
}

TEST(SourceQueue, PeakDepthCountsHoldback) {
  SourceQueue q(1, BufferPolicy::kBackpressure);
  for (std::uint32_t i = 0; i < 4; ++i) q.offer(pkt(i));
  EXPECT_EQ(q.stats().peak_depth, 4u);
  q.drain();
  EXPECT_EQ(q.stats().peak_depth, 4u);  // peak is sticky
}

TEST(SourceQueue, DrainOnEmptyIsEmpty) {
  SourceQueue q(4, BufferPolicy::kDropNew);
  EXPECT_TRUE(q.drain().empty());
}

TEST(QueueStats, MergeSumsCountersAndMaxesPeak) {
  QueueStats a;
  a.offered = 10;
  a.admitted = 8;
  a.dropped = 2;
  a.peak_depth = 5;
  QueueStats b;
  b.offered = 3;
  b.admitted = 3;
  b.backpressured = 1;
  b.peak_depth = 9;
  a.merge(b);
  EXPECT_EQ(a.offered, 13u);
  EXPECT_EQ(a.admitted, 11u);
  EXPECT_EQ(a.dropped, 2u);
  EXPECT_EQ(a.backpressured, 1u);
  EXPECT_EQ(a.peak_depth, 9u);
}

TEST(SourceQueue, PolicyNamesRoundTrip) {
  for (BufferPolicy p : {BufferPolicy::kDropNew, BufferPolicy::kDropOld,
                         BufferPolicy::kBackpressure}) {
    BufferPolicy parsed{};
    ASSERT_TRUE(buffer_policy_from_string(buffer_policy_name(p), parsed));
    EXPECT_EQ(parsed, p);
  }
  BufferPolicy unused{};
  EXPECT_FALSE(buffer_policy_from_string("droptail", unused));
}

SaturationConfig sat_cfg(std::uint32_t window, std::uint64_t min_growth) {
  SaturationConfig cfg;
  cfg.window = window;
  cfg.min_growth = min_growth;
  return cfg;
}

TEST(SaturationDetector, GrowingTraceLatchesAtFirstFullWindow) {
  SaturationDetector d(sat_cfg(3, 4));
  // Depth grows by 2 per sample: the first window-apart comparison is
  // sample 3 vs sample 0 (growth 6 >= 4).
  for (std::uint64_t depth : {0, 2, 4, 6}) d.sample(depth);
  EXPECT_TRUE(d.saturated());
  EXPECT_EQ(d.onset_sample(), 3u);
}

TEST(SaturationDetector, FlatTraceNeverLatches) {
  SaturationDetector d(sat_cfg(3, 1));
  for (int i = 0; i < 40; ++i) d.sample(17);
  EXPECT_FALSE(d.saturated());
}

TEST(SaturationDetector, OscillationBelowThresholdNeverLatches) {
  SaturationDetector d(sat_cfg(4, 10));
  // A stable working level that wobbles +-4 around 20.
  const std::uint64_t trace[] = {20, 24, 16, 22, 18, 24, 16, 20, 24, 18};
  for (std::uint64_t depth : trace) d.sample(depth);
  EXPECT_FALSE(d.saturated());
}

TEST(SaturationDetector, SlowGrowthBelowMinGrowthIgnored) {
  SaturationDetector d(sat_cfg(4, 8));
  // +1 per sample: window growth is 4 < 8 forever.
  for (std::uint64_t i = 0; i < 30; ++i) d.sample(i);
  EXPECT_FALSE(d.saturated());
}

TEST(SaturationDetector, LatchIsSticky) {
  SaturationDetector d(sat_cfg(2, 2));
  for (std::uint64_t depth : {0, 5, 10}) d.sample(depth);
  ASSERT_TRUE(d.saturated());
  const std::uint64_t onset = d.onset_sample();
  for (int i = 0; i < 10; ++i) d.sample(0);  // backlog drains afterwards
  EXPECT_TRUE(d.saturated());
  EXPECT_EQ(d.onset_sample(), onset);
}

TEST(SaturationDetector, NeedsFullWindowBeforeJudging) {
  SaturationDetector d(sat_cfg(5, 1));
  for (std::uint64_t depth : {0, 100, 200, 300, 400}) d.sample(depth);
  // Only 5 samples so far; the first comparison needs window+1 = 6.
  EXPECT_FALSE(d.saturated());
  d.sample(500);
  EXPECT_TRUE(d.saturated());
  EXPECT_EQ(d.onset_sample(), 5u);
}

}  // namespace
}  // namespace radiocast::stream
