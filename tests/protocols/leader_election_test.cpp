#include "protocols/leader_election.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "radio/network.hpp"

namespace radiocast::protocols {
namespace {

using radio::Knowledge;

struct ElectionOutcome {
  int leaders = 0;
  radio::NodeId leader = 0;
  bool all_participants_agree = true;
  std::uint64_t rounds = 0;
};

ElectionOutcome run_election(const graph::Graph& g,
                             const std::vector<radio::NodeId>& participants,
                             std::uint64_t seed) {
  const Knowledge know = Knowledge::exact(g);
  LeaderElectionState::Config cfg;
  cfg.know = know;
  cfg.probe_epochs = bgi_default_epochs(know);

  radio::Network net(g);
  Rng master(seed);
  std::vector<bool> is_part(g.num_nodes(), false);
  for (radio::NodeId p : participants) is_part[p] = true;
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    net.set_protocol(v, std::make_unique<LeaderElectionNode>(cfg, v, is_part[v],
                                                             master.split()));
    if (is_part[v]) net.wake_at_start(v);
  }
  // Run the full stage (plus one round so every node finalizes).
  const std::uint64_t total =
      static_cast<std::uint64_t>(cfg.probe_epochs) * know.log_delta() *
      std::max<std::uint32_t>(1, ceil_log2(next_pow2(know.n_hat)));
  for (std::uint64_t r = 0; r <= total; ++r) net.step();

  ElectionOutcome out;
  out.rounds = total;
  radio::NodeId expected = 0;
  bool first = true;
  for (radio::NodeId p : participants) {
    expected = first ? p : std::max(expected, p);
    first = false;
  }
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    auto& node = static_cast<LeaderElectionNode&>(net.protocol(v));
    node.state().finalize();
    if (node.state().is_leader()) {
      ++out.leaders;
      out.leader = v;
    }
    if (is_part[v] && node.state().leader_id() != expected) {
      out.all_participants_agree = false;
    }
  }
  return out;
}

TEST(LeaderElection, ElectsMaxIdOnPath) {
  const graph::Graph g = graph::make_path(20);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const ElectionOutcome out = run_election(g, {3, 7, 12}, seed);
    EXPECT_EQ(out.leaders, 1);
    EXPECT_EQ(out.leader, 12u);
    EXPECT_TRUE(out.all_participants_agree);
  }
}

TEST(LeaderElection, ElectsMaxIdOnGnp) {
  Rng grng(1);
  const graph::Graph g = graph::make_gnp_connected(40, 0.1, grng);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const ElectionOutcome out = run_election(g, {0, 11, 25, 39}, seed);
    EXPECT_EQ(out.leaders, 1);
    EXPECT_EQ(out.leader, 39u);
    EXPECT_TRUE(out.all_participants_agree);
  }
}

TEST(LeaderElection, SingleParticipantWins) {
  const graph::Graph g = graph::make_star(16);
  const ElectionOutcome out = run_election(g, {4}, 1);
  EXPECT_EQ(out.leaders, 1);
  EXPECT_EQ(out.leader, 4u);
}

TEST(LeaderElection, ParticipantZeroWins) {
  // Edge case: the only participant has the all-negative probe trace.
  const graph::Graph g = graph::make_path(8);
  const ElectionOutcome out = run_election(g, {0}, 2);
  EXPECT_EQ(out.leaders, 1);
  EXPECT_EQ(out.leader, 0u);
}

TEST(LeaderElection, NoParticipantsNoLeader) {
  const graph::Graph g = graph::make_path(8);
  const ElectionOutcome out = run_election(g, {}, 3);
  EXPECT_EQ(out.leaders, 0);
}

TEST(LeaderElection, AllNodesParticipate) {
  Rng grng(2);
  const graph::Graph g = graph::make_random_geometric(30, 0.35, grng);
  std::vector<radio::NodeId> everyone;
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) everyone.push_back(v);
  const ElectionOutcome out = run_election(g, everyone, 4);
  EXPECT_EQ(out.leaders, 1);
  EXPECT_EQ(out.leader, g.num_nodes() - 1);
  EXPECT_TRUE(out.all_participants_agree);
}

TEST(LeaderElectionState, ProbeCountMatchesIdSpace) {
  Knowledge know;
  know.n_hat = 100;  // next_pow2 = 128 => 7 probes
  know.delta_hat = 4;
  know.d_hat = 3;
  Rng rng(5);
  LeaderElectionState::Config cfg{know, 2};
  LeaderElectionState st(cfg, 5, true, &rng);
  EXPECT_EQ(st.probes(), 7u);
  EXPECT_EQ(st.total_rounds(), 7ull * 2 * know.log_delta());
}

TEST(LeaderElectionState, IsolatedParticipantElectsItselfByRadioSilence) {
  // One participant, no neighbors transmitting: probes it arms are
  // positive (it knows its own signal), others are negative.
  Knowledge know;
  know.n_hat = 16;
  know.delta_hat = 2;
  know.d_hat = 2;
  Rng rng(6);
  LeaderElectionState::Config cfg{know, 2};
  LeaderElectionState st(cfg, 9, true, &rng);
  for (std::uint64_t r = 0; r < st.total_rounds(); ++r) st.on_transmit(r);
  st.finalize();
  EXPECT_TRUE(st.finished());
  EXPECT_EQ(st.leader_id(), 9u);
  EXPECT_TRUE(st.is_leader());
}

}  // namespace
}  // namespace radiocast::protocols
