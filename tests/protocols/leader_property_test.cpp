// Leader-election property sweep: adversarial participant sets on several
// topologies — the invariant is always "exactly one leader, and it is the
// maximum-id participant, and every participant agrees".
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "protocols/leader_election.hpp"
#include "radio/network.hpp"

namespace radiocast::protocols {
namespace {

struct Outcome {
  int leaders = 0;
  radio::NodeId leader = 0;
  bool participants_agree = true;
};

Outcome run(const graph::Graph& g, const std::vector<bool>& is_part,
            std::uint64_t seed) {
  const radio::Knowledge know = radio::Knowledge::exact(g);
  LeaderElectionState::Config cfg;
  cfg.know = know;
  cfg.probe_epochs = bgi_default_epochs(know);
  radio::Network net(g);
  Rng master(seed);
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    net.set_protocol(v, std::make_unique<LeaderElectionNode>(cfg, v, is_part[v],
                                                             master.split()));
    if (is_part[v]) net.wake_at_start(v);
  }
  radio::NodeId expected = 0;
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (is_part[v]) expected = v;
  }
  const auto& probe = static_cast<const LeaderElectionNode&>(net.protocol(0));
  for (std::uint64_t r = 0; r <= probe.state().total_rounds(); ++r) net.step();

  Outcome out;
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    auto& node = static_cast<LeaderElectionNode&>(net.protocol(v));
    node.state().finalize();
    if (node.state().is_leader()) {
      ++out.leaders;
      out.leader = v;
    }
    if (is_part[v] && node.state().leader_id() != expected) {
      out.participants_agree = false;
    }
  }
  return out;
}

enum class Pattern { kAll, kLowHalf, kHighHalf, kEveryThird, kTwoAdjacent, kExtremes };

class LeaderSweep
    : public ::testing::TestWithParam<std::tuple<std::string, Pattern>> {};

TEST_P(LeaderSweep, UniqueMaxIdLeader) {
  const auto& [family, pattern] = GetParam();
  Rng grng(3);
  const graph::Graph g = graph::make_named(family, 32, grng);
  const radio::NodeId n = g.num_nodes();
  std::vector<bool> part(n, false);
  radio::NodeId expected = 0;
  switch (pattern) {
    case Pattern::kAll:
      for (radio::NodeId v = 0; v < n; ++v) part[v] = true;
      expected = n - 1;
      break;
    case Pattern::kLowHalf:
      for (radio::NodeId v = 0; v < n / 2; ++v) part[v] = true;
      expected = n / 2 - 1;
      break;
    case Pattern::kHighHalf:
      for (radio::NodeId v = n / 2; v < n; ++v) part[v] = true;
      expected = n - 1;
      break;
    case Pattern::kEveryThird:
      for (radio::NodeId v = 0; v < n; v += 3) part[v] = true;
      expected = ((n - 1) / 3) * 3;
      break;
    case Pattern::kTwoAdjacent:
      part[n / 2] = part[n / 2 + 1] = true;
      expected = n / 2 + 1;
      break;
    case Pattern::kExtremes:
      part[0] = part[n - 1] = true;
      expected = n - 1;
      break;
  }
  const Outcome out = run(g, part, 17);
  EXPECT_EQ(out.leaders, 1) << family;
  EXPECT_EQ(out.leader, expected) << family;
  EXPECT_TRUE(out.participants_agree) << family;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LeaderSweep,
    ::testing::Combine(::testing::Values("path", "star", "gnp", "geometric",
                                         "cluster_chain"),
                       ::testing::Values(Pattern::kAll, Pattern::kLowHalf,
                                         Pattern::kHighHalf, Pattern::kEveryThird,
                                         Pattern::kTwoAdjacent, Pattern::kExtremes)));

}  // namespace
}  // namespace radiocast::protocols
