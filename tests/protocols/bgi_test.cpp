#include "protocols/bgi_broadcast.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "protocols/alarm.hpp"
#include "radio/network.hpp"

namespace radiocast::protocols {
namespace {

using radio::Knowledge;

/// Builds a network of BgiBroadcastNodes with the given sources flooding an
/// AlarmMsg, runs to completion or window end, and reports whether every
/// node got the message.
struct FloodOutcome {
  bool all_received = true;
  std::uint64_t completion_round = 0;
};

FloodOutcome run_flood(const graph::Graph& g, const std::vector<radio::NodeId>& sources,
                       std::uint64_t seed, std::uint32_t epochs = 0) {
  const Knowledge know = Knowledge::exact(g);
  BgiBroadcastNode::Config cfg;
  cfg.know = know;
  cfg.epochs = epochs;

  radio::Network net(g);
  Rng master(seed);
  std::vector<bool> is_source(g.num_nodes(), false);
  for (radio::NodeId s : sources) is_source[s] = true;
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    net.set_protocol(v, std::make_unique<BgiBroadcastNode>(
                            cfg, is_source[v],
                            is_source[v] ? std::optional<radio::MessageBody>(
                                               radio::AlarmMsg{})
                                         : std::nullopt,
                            master.split()));
    if (is_source[v]) net.wake_at_start(v);
  }
  const std::uint64_t window =
      static_cast<std::uint64_t>(epochs != 0 ? epochs : bgi_default_epochs(know)) *
      know.log_delta();
  const bool done = net.run_until_done(window);
  FloodOutcome out;
  out.all_received = done;
  out.completion_round = net.current_round();
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& node = static_cast<const BgiBroadcastNode&>(net.protocol(v));
    if (!node.has_message()) out.all_received = false;
  }
  return out;
}

TEST(BgiBroadcast, SingleSourceReachesAllOnPath) {
  const graph::Graph g = graph::make_path(30);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    EXPECT_TRUE(run_flood(g, {0}, seed).all_received) << "seed " << seed;
  }
}

TEST(BgiBroadcast, SingleSourceReachesAllOnStar) {
  const graph::Graph g = graph::make_star(40);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    EXPECT_TRUE(run_flood(g, {5}, seed).all_received) << "seed " << seed;
  }
}

TEST(BgiBroadcast, SingleSourceReachesAllOnGeometric) {
  Rng grng(3);
  const graph::Graph g = graph::make_random_geometric(60, 0.25, grng);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    EXPECT_TRUE(run_flood(g, {0}, seed).all_received) << "seed " << seed;
  }
}

TEST(BgiBroadcast, MultiSourceBehavesLikeAlarm) {
  // Many sources, one message — the ALARM setting. Every node must still
  // receive it (the paper's n+1-virtual-source argument).
  Rng grng(4);
  const graph::Graph g = graph::make_gnp_connected(50, 0.08, grng);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    EXPECT_TRUE(run_flood(g, {1, 10, 20, 30, 45}, seed).all_received);
  }
}

TEST(BgiBroadcast, NoSourceMeansSilence) {
  const graph::Graph g = graph::make_path(10);
  const FloodOutcome out = run_flood(g, {}, 1);
  EXPECT_FALSE(out.all_received);
}

TEST(BgiBroadcast, CompletionScalesWithDiameter) {
  // Deep path vs flat star at the same n: the path must take strictly
  // longer (D dominates), the star must finish in O(log) rounds.
  const graph::Graph path = graph::make_path(64);
  const graph::Graph star = graph::make_star(64);
  std::uint64_t path_total = 0, star_total = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    path_total += run_flood(path, {0}, seed).completion_round;
    star_total += run_flood(star, {0}, seed).completion_round;
  }
  EXPECT_GT(path_total, 3 * star_total);
}

TEST(BgiFlood, SourceTransmitsReceiverJoins) {
  Rng rng(5);
  BgiFlood source(2, &rng);
  source.reset(radio::MessageBody{radio::AlarmMsg{}});
  EXPECT_TRUE(source.has_message());
  EXPECT_FALSE(source.received());
  // Over one epoch the source transmits with probability 1/2 then 1/4:
  // over many epochs it must transmit at least once.
  bool transmitted = false;
  for (std::uint64_t r = 0; r < 100; ++r) {
    transmitted |= source.on_transmit(r).has_value();
  }
  EXPECT_TRUE(transmitted);

  Rng rng2(6);
  BgiFlood relay(2, &rng2);
  relay.reset(std::nullopt);
  EXPECT_FALSE(relay.has_message());
  bool idle = false;
  for (std::uint64_t r = 0; r < 100; ++r) {
    idle |= relay.on_transmit(r).has_value();
  }
  EXPECT_FALSE(idle);  // nodes without the message never transmit
  relay.on_receive(radio::MessageBody{radio::AlarmMsg{}});
  EXPECT_TRUE(relay.has_message());
  EXPECT_TRUE(relay.received());
}

TEST(AlarmWindow, ArmedHeardPositiveSemantics) {
  Rng rng(7);
  AlarmWindow w(2, &rng);
  w.reset(false);
  EXPECT_FALSE(w.armed());
  EXPECT_FALSE(w.heard());
  EXPECT_FALSE(w.positive());
  w.on_receive(radio::MessageBody{radio::AlarmMsg{}});
  EXPECT_TRUE(w.heard());
  EXPECT_TRUE(w.positive());

  w.reset(true);
  EXPECT_TRUE(w.armed());
  EXPECT_FALSE(w.heard());
  EXPECT_TRUE(w.positive());
}

TEST(AlarmWindow, IgnoresNonAlarmBodies) {
  Rng rng(8);
  AlarmWindow w(2, &rng);
  w.reset(false);
  w.on_receive(radio::MessageBody{radio::BfsConstructMsg{}});
  EXPECT_FALSE(w.positive());
}

TEST(AlarmWindow, DefaultEpochsFormula) {
  Knowledge know;
  know.n_hat = 64;
  know.delta_hat = 8;
  know.d_hat = 10;
  EXPECT_EQ(bgi_default_epochs(know), 4u * 10 + 12u * 6);
  EXPECT_EQ(alarm_window_rounds(know, 10), 10u * know.log_delta());
}

}  // namespace
}  // namespace radiocast::protocols
