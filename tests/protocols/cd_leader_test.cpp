// Tests of the collision-detection model ablation: the CD channel
// semantics in the engine and the native binary-search election built on
// it.
#include "protocols/cd_leader_election.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "radio/network.hpp"

namespace radiocast::protocols {
namespace {

/// Records on_collision callbacks; transmits per script.
class CdProbe final : public radio::NodeProtocol {
 public:
  explicit CdProbe(bool transmit) : transmit_(transmit) {}
  std::optional<radio::MessageBody> on_transmit(radio::Round) override {
    if (transmit_) return radio::MessageBody{radio::AlarmMsg{}};
    return std::nullopt;
  }
  void on_receive(radio::Round, const radio::Message&) override { ++received_; }
  void on_collision(radio::Round) override { ++collisions_; }
  bool transmit_;
  int received_ = 0;
  int collisions_ = 0;
};

TEST(CollisionDetection, CallbackFiresOnlyWhenEnabled) {
  for (const bool enabled : {false, true}) {
    const graph::Graph g = graph::make_star(3);  // two leaves + center
    radio::Network net(g);
    net.enable_collision_detection(enabled);
    net.set_protocol(0, std::make_unique<CdProbe>(false));
    net.set_protocol(1, std::make_unique<CdProbe>(true));
    net.set_protocol(2, std::make_unique<CdProbe>(true));
    for (radio::NodeId v = 0; v < 3; ++v) net.wake_at_start(v);
    net.step();
    const auto& center = static_cast<const CdProbe&>(net.protocol(0));
    EXPECT_EQ(center.received_, 0);
    EXPECT_EQ(center.collisions_, enabled ? 1 : 0);
  }
}

TEST(CollisionDetection, SingleTransmitterStillDeliversNormally) {
  const graph::Graph g = graph::make_star(2);
  radio::Network net(g);
  net.enable_collision_detection(true);
  net.set_protocol(0, std::make_unique<CdProbe>(false));
  net.set_protocol(1, std::make_unique<CdProbe>(true));
  net.wake_at_start(0);
  net.wake_at_start(1);
  net.step();
  const auto& center = static_cast<const CdProbe&>(net.protocol(0));
  EXPECT_EQ(center.received_, 1);
  EXPECT_EQ(center.collisions_, 0);
}

struct CdElectionOutcome {
  int leaders = 0;
  radio::NodeId leader = 0;
  std::uint64_t rounds = 0;
};

CdElectionOutcome run_cd_election(std::uint32_t n,
                                  const std::vector<radio::NodeId>& participants) {
  const graph::Graph g = graph::make_complete(n);
  const radio::Knowledge know = radio::Knowledge::exact(g);
  radio::Network net(g);
  net.enable_collision_detection(true);
  std::vector<bool> is_part(n, false);
  for (radio::NodeId p : participants) is_part[p] = true;
  for (radio::NodeId v = 0; v < n; ++v) {
    net.set_protocol(v, std::make_unique<CdLeaderElectionNode>(know, v, is_part[v]));
    net.wake_at_start(v);
  }
  const auto& probe = static_cast<const CdLeaderElectionNode&>(net.protocol(0));
  const std::uint64_t total = probe.total_rounds() + 1;
  for (std::uint64_t r = 0; r < total; ++r) net.step();

  CdElectionOutcome out;
  out.rounds = total;
  for (radio::NodeId v = 0; v < n; ++v) {
    auto& node = static_cast<CdLeaderElectionNode&>(net.protocol(v));
    node.finalize(total);
    if (node.is_leader()) {
      ++out.leaders;
      out.leader = v;
    }
  }
  return out;
}

TEST(CdLeaderElection, ElectsMaxInLogRounds) {
  const CdElectionOutcome out = run_cd_election(16, {2, 7, 11});
  EXPECT_EQ(out.leaders, 1);
  EXPECT_EQ(out.leader, 11u);
  EXPECT_LE(out.rounds, 5u);  // ceil(log2 16) + finalize round
}

TEST(CdLeaderElection, AllParticipate) {
  const CdElectionOutcome out = run_cd_election(32, [] {
    std::vector<radio::NodeId> v;
    for (radio::NodeId i = 0; i < 32; ++i) v.push_back(i);
    return v;
  }());
  EXPECT_EQ(out.leaders, 1);
  EXPECT_EQ(out.leader, 31u);
}

TEST(CdLeaderElection, SingleParticipant) {
  const CdElectionOutcome out = run_cd_election(16, {5});
  EXPECT_EQ(out.leaders, 1);
  EXPECT_EQ(out.leader, 5u);
}

TEST(CdLeaderElection, ParticipantZero) {
  const CdElectionOutcome out = run_cd_election(8, {0});
  EXPECT_EQ(out.leaders, 1);
  EXPECT_EQ(out.leader, 0u);
}

TEST(CdLeaderElection, NoParticipants) {
  const CdElectionOutcome out = run_cd_election(8, {});
  EXPECT_EQ(out.leaders, 0);
}

TEST(CdLeaderElection, AdjacentIdsResolved) {
  // The hardest case for a binary search: two candidates one apart.
  for (const radio::NodeId base : {0u, 6u, 14u}) {
    const CdElectionOutcome out = run_cd_election(16, {base, base + 1});
    EXPECT_EQ(out.leaders, 1);
    EXPECT_EQ(out.leader, base + 1);
  }
}

}  // namespace
}  // namespace radiocast::protocols
