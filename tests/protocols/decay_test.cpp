#include "protocols/decay.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace radiocast::protocols {
namespace {

TEST(Decay, ProbabilitySequenceHalves) {
  Decay d(4);
  EXPECT_DOUBLE_EQ(d.probability(0), 0.5);
  EXPECT_DOUBLE_EQ(d.probability(1), 0.25);
  EXPECT_DOUBLE_EQ(d.probability(2), 0.125);
  EXPECT_DOUBLE_EQ(d.probability(3), 0.0625);
  // Wraps to the next epoch.
  EXPECT_DOUBLE_EQ(d.probability(4), 0.5);
  EXPECT_DOUBLE_EQ(d.probability(7), 0.0625);
}

TEST(Decay, EpochOf) {
  Decay d(3);
  EXPECT_EQ(d.epoch_of(0), 0u);
  EXPECT_EQ(d.epoch_of(2), 0u);
  EXPECT_EQ(d.epoch_of(3), 1u);
  EXPECT_EQ(d.epoch_of(8), 2u);
}

TEST(Decay, DecideMatchesProbability) {
  Decay d(3);
  Rng rng(1);
  const int trials = 40000;
  for (std::uint32_t s = 0; s < 3; ++s) {
    int hits = 0;
    for (int i = 0; i < trials; ++i) {
      if (d.decide(s, rng)) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / trials, d.probability(s), 0.01);
  }
}

// The Decay guarantee the whole protocol stack rests on: for any number of
// transmitters m with 1 <= m <= Delta, some round of the epoch has constant
// success probability ("exactly one of m transmits"). We Monte-Carlo the
// per-epoch success probability (success in at least one round) and require
// the constant to be respectable across the full range of m.
class DecayEpochSuccess : public ::testing::TestWithParam<int> {};

TEST_P(DecayEpochSuccess, EpochSuccessIsConstant) {
  const int m = GetParam();            // number of transmitting neighbors
  const std::uint32_t delta = 64;      // epoch tuned for Delta = 64
  Decay d(6);                          // ceil(log2 64)
  Rng rng(1000 + m);
  (void)delta;

  BernoulliCounter success;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    bool received = false;
    for (std::uint32_t s = 0; s < 6 && !received; ++s) {
      int transmitting = 0;
      for (int i = 0; i < m; ++i) {
        if (d.decide(s, rng)) ++transmitting;
      }
      received = transmitting == 1;
    }
    success.add(received);
  }
  // The classical analysis gives >= 1/(2e) for the single best round; the
  // whole epoch does at least that. Require a safe 0.3.
  EXPECT_GE(success.wilson_lower95(), 0.3) << "m=" << m;
}

INSTANTIATE_TEST_SUITE_P(TransmitterCounts, DecayEpochSuccess,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 32, 64));

TEST(PersistentDecay, AlwaysTransmitsFirstRoundOfEpoch) {
  PersistentDecay d(4);
  Rng rng(1);
  for (std::uint64_t epoch = 0; epoch < 50; ++epoch) {
    EXPECT_TRUE(d.decide(epoch * 4, rng));
  }
}

TEST(PersistentDecay, TransmissionsArePrefixOfEpoch) {
  // Once the node stops within an epoch it stays silent until the next.
  PersistentDecay d(6);
  Rng rng(2);
  for (std::uint64_t epoch = 0; epoch < 200; ++epoch) {
    bool stopped = false;
    for (std::uint32_t s = 0; s < 6; ++s) {
      const bool tx = d.decide(epoch * 6 + s, rng);
      if (stopped) {
        EXPECT_FALSE(tx);
      }
      if (!tx) stopped = true;
    }
  }
}

TEST(PersistentDecay, MarginalsHalveFromOne) {
  PersistentDecay d(5);
  Rng rng(3);
  const int epochs = 40000;
  std::vector<int> counts(5, 0);
  for (int e = 0; e < epochs; ++e) {
    for (std::uint32_t s = 0; s < 5; ++s) {
      if (d.decide(static_cast<std::uint64_t>(e) * 5 + s, rng)) ++counts[s];
    }
  }
  for (std::uint32_t s = 0; s < 5; ++s) {
    const double expected = 1.0 / static_cast<double>(1u << s);
    EXPECT_NEAR(static_cast<double>(counts[s]) / epochs, expected, 0.01)
        << "round " << s;
  }
}

class PersistentDecayEpochSuccess : public ::testing::TestWithParam<int> {};

TEST_P(PersistentDecayEpochSuccess, EpochSuccessIsConstant) {
  // The classic formulation gives the same constant-probability guarantee.
  const int m = GetParam();
  Rng rng(2000 + m);
  BernoulliCounter success;
  const int trials = 4000;
  std::vector<PersistentDecay> nodes(static_cast<std::size_t>(m),
                                     PersistentDecay(6));
  for (int t = 0; t < trials; ++t) {
    bool received = false;
    for (std::uint32_t s = 0; s < 6; ++s) {
      int transmitting = 0;
      for (auto& node : nodes) {
        if (node.decide(static_cast<std::uint64_t>(t) * 6 + s, rng)) ++transmitting;
      }
      received |= transmitting == 1;
    }
    success.add(received);
  }
  // Slightly looser than the independent variant: at m = 2^epoch_len the
  // persistent rule's success probability sits just above 0.29.
  EXPECT_GE(success.wilson_lower95(), 0.28) << "m=" << m;
}

INSTANTIATE_TEST_SUITE_P(TransmitterCounts, PersistentDecayEpochSuccess,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 32, 64));

}  // namespace
}  // namespace radiocast::protocols
