#include "protocols/bfs_construction.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "radio/network.hpp"

namespace radiocast::protocols {
namespace {

using radio::Knowledge;

struct BfsOutcome {
  bool all_joined = true;
  bool tree_valid = false;
};

BfsOutcome run_bfs(const graph::Graph& g, radio::NodeId root, std::uint64_t seed) {
  const Knowledge know = Knowledge::exact(g);
  BfsBuildState::Config cfg;
  cfg.know = know;
  cfg.epochs_per_phase = 6 * know.log_n();
  cfg.extra_phases = 2;

  radio::Network net(g);
  Rng master(seed);
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    net.set_protocol(
        v, std::make_unique<BfsConstructionNode>(cfg, v, v == root, master.split()));
  }
  net.wake_at_start(root);
  const std::uint64_t total =
      static_cast<std::uint64_t>(know.d_hat + cfg.extra_phases) *
      cfg.epochs_per_phase * know.log_delta();
  for (std::uint64_t r = 0; r < total; ++r) net.step();

  BfsOutcome out;
  std::vector<radio::NodeId> parent(g.num_nodes());
  std::vector<std::uint32_t> dist(g.num_nodes(), 0);
  for (radio::NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& node = static_cast<const BfsConstructionNode&>(net.protocol(v));
    if (!node.state().has_distance()) {
      out.all_joined = false;
      continue;
    }
    parent[v] = node.state().parent();
    dist[v] = node.state().distance();
  }
  if (out.all_joined) {
    out.tree_valid = graph::is_valid_bfs_tree(g, root, parent, dist);
  }
  return out;
}

class BfsFamilies : public ::testing::TestWithParam<std::string> {};

TEST_P(BfsFamilies, BuildsExactTreeWhp) {
  Rng grng(10);
  const graph::Graph g = graph::make_named(GetParam(), 40, grng);
  int valid = 0;
  const int trials = 3;
  for (int t = 0; t < trials; ++t) {
    const BfsOutcome out = run_bfs(g, 0, 100 + t);
    EXPECT_TRUE(out.all_joined) << GetParam() << " trial " << t;
    if (out.tree_valid) ++valid;
  }
  // Exact distances hold w.h.p.; demand all trials at this size.
  EXPECT_EQ(valid, trials) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, BfsFamilies,
                         ::testing::ValuesIn(graph::named_families()));

TEST(BfsConstruction, RootIsItsOwnParentAtDistanceZero) {
  const graph::Graph g = graph::make_path(4);
  const Knowledge know = Knowledge::exact(g);
  Rng rng(1);
  BfsBuildState::Config cfg{know, 4, 2};
  BfsBuildState root(cfg, 2, true, &rng);
  EXPECT_TRUE(root.has_distance());
  EXPECT_EQ(root.distance(), 0u);
  EXPECT_EQ(root.parent(), 2u);
}

TEST(BfsConstruction, NonRootStartsUnassigned) {
  const graph::Graph g = graph::make_path(4);
  const Knowledge know = Knowledge::exact(g);
  Rng rng(2);
  BfsBuildState::Config cfg{know, 4, 2};
  BfsBuildState node(cfg, 1, false, &rng);
  EXPECT_FALSE(node.has_distance());
  // Unassigned nodes never transmit.
  for (std::uint64_t r = 0; r < node.total_rounds(); ++r) {
    EXPECT_FALSE(node.on_transmit(r).has_value());
  }
}

TEST(BfsConstruction, FirstConstructionMessageWins) {
  const graph::Graph g = graph::make_path(4);
  const Knowledge know = Knowledge::exact(g);
  Rng rng(3);
  BfsBuildState::Config cfg{know, 4, 2};
  BfsBuildState node(cfg, 1, false, &rng);
  radio::Message m1{0, radio::BfsConstructMsg{0, 0}};
  radio::Message m2{2, radio::BfsConstructMsg{2, 3}};
  node.on_receive(0, m1);
  node.on_receive(1, m2);
  EXPECT_EQ(node.distance(), 1u);
  EXPECT_EQ(node.parent(), 0u);
}

TEST(BfsConstruction, OnlyCurrentLayerTransmits) {
  const graph::Graph g = graph::make_path(8);
  const Knowledge know = Knowledge::exact(g);
  Rng rng(4);
  BfsBuildState::Config cfg{know, 2, 2};
  BfsBuildState node(cfg, 3, false, &rng);
  radio::Message m{2, radio::BfsConstructMsg{2, 1}};
  node.on_receive(5, m);  // node adopts distance 2
  const std::uint64_t phase_rounds = 2ull * know.log_delta();
  // Phases 0,1: silent; phase 2: may transmit; later phases: silent.
  bool transmitted_phase2 = false;
  for (std::uint64_t r = 0; r < node.total_rounds(); ++r) {
    const auto msg = node.on_transmit(r);
    const std::uint64_t phase = r / phase_rounds;
    if (msg.has_value()) {
      EXPECT_EQ(phase, 2u);
      transmitted_phase2 = true;
      const auto* c = std::get_if<radio::BfsConstructMsg>(&*msg);
      ASSERT_NE(c, nullptr);
      EXPECT_EQ(c->id, 3u);
      EXPECT_EQ(c->dist, 2u);
    }
  }
  EXPECT_TRUE(transmitted_phase2);  // whp over the phase's epochs
}

}  // namespace
}  // namespace radiocast::protocols
