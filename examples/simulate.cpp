// simulate — a command-line driver for the whole testbed.
//
//   $ ./simulate [options]
//     --family NAME      topology family (default: geometric; see --list)
//     --n N              number of nodes (default 64)
//     --k K              number of packets (default 64)
//     --algo NAME        coded | uncoded | seqbgi | gossip (default coded)
//     --placement MODE   random | single | spread (default random)
//     --payload BYTES    packet payload size (default 16)
//     --seed S           master seed (default 1)
//     --loss P           injected reception-loss probability (default 0)
//     --padded           use padded (polynomial) knowledge instead of exact
//     --graph FILE       load an edge-list topology instead of --family
//     --dot FILE         also write the topology as Graphviz DOT
//     --list             list the built-in topology families
//
// Prints a one-run report: per-stage rounds, message-kind breakdown,
// channel statistics, and the verification verdict.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "baselines/uncoded_pipeline.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/runner.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace {

struct Options {
  std::string family = "geometric";
  std::uint32_t n = 64;
  std::uint32_t k = 64;
  std::string algo = "coded";
  std::string placement = "random";
  std::uint32_t payload = 16;
  std::uint64_t seed = 1;
  double loss = 0.0;
  bool padded = false;
  std::string graph_file;
  std::string dot_file;
};

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "simulate: %s (run with --help)\n", message.c_str());
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage_error(std::string("missing value for ") + argv[i]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--family") opt.family = need_value(i);
    else if (arg == "--n") opt.n = static_cast<std::uint32_t>(std::stoul(need_value(i)));
    else if (arg == "--k") opt.k = static_cast<std::uint32_t>(std::stoul(need_value(i)));
    else if (arg == "--algo") opt.algo = need_value(i);
    else if (arg == "--placement") opt.placement = need_value(i);
    else if (arg == "--payload") opt.payload = static_cast<std::uint32_t>(std::stoul(need_value(i)));
    else if (arg == "--seed") opt.seed = std::stoull(need_value(i));
    else if (arg == "--loss") opt.loss = std::stod(need_value(i));
    else if (arg == "--padded") opt.padded = true;
    else if (arg == "--graph") opt.graph_file = need_value(i);
    else if (arg == "--dot") opt.dot_file = need_value(i);
    else if (arg == "--list") {
      for (const auto& f : radiocast::graph::named_families()) std::puts(f.c_str());
      std::exit(0);
    } else if (arg == "--help" || arg == "-h") {
      std::puts("see the comment block at the top of examples/simulate.cpp");
      std::exit(0);
    } else {
      usage_error("unknown option " + arg);
    }
  }
  return opt;
}

radiocast::baselines::Algo algo_from_name(const std::string& name) {
  using radiocast::baselines::Algo;
  if (name == "coded") return Algo::kCoded;
  if (name == "uncoded") return Algo::kUncodedPipeline;
  if (name == "seqbgi") return Algo::kSequentialBgi;
  if (name == "gossip") return Algo::kGossipFlood;
  usage_error("unknown --algo " + name);
}

radiocast::core::PlacementMode placement_from_name(const std::string& name) {
  using radiocast::core::PlacementMode;
  if (name == "random") return PlacementMode::kRandom;
  if (name == "single") return PlacementMode::kSingleSource;
  if (name == "spread") return PlacementMode::kSpreadEven;
  usage_error("unknown --placement " + name);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace radiocast;
  const Options opt = parse(argc, argv);

  // Topology.
  Rng grng(opt.seed);
  graph::Graph g;
  if (!opt.graph_file.empty()) {
    std::ifstream in(opt.graph_file);
    if (!in) usage_error("cannot open " + opt.graph_file);
    std::string error;
    auto parsed = graph::read_edge_list(in, &error);
    if (!parsed.has_value()) usage_error("bad graph file: " + error);
    g = std::move(*parsed);
    if (!graph::is_connected(g)) usage_error("graph must be connected");
  } else {
    g = graph::make_named(opt.family, opt.n, grng);
  }
  if (!opt.dot_file.empty()) {
    std::ofstream out(opt.dot_file);
    graph::write_dot(out, g);
  }

  const radio::Knowledge know =
      opt.padded ? radio::Knowledge::padded(g) : radio::Knowledge::exact(g);
  std::printf("topology : %s (D=%u)\n", g.summary().c_str(), know.d_hat);
  std::printf("knowledge: n^=%u delta^=%u D^=%u%s\n", know.n_hat, know.delta_hat,
              know.d_hat, opt.padded ? " (padded)" : "");

  // Workload.
  Rng prng(opt.seed + 1);
  const core::Placement placement = core::make_placement(
      g.num_nodes(), opt.k, placement_from_name(opt.placement), opt.payload, prng);

  // Run. Fault injection goes through run_kbroadcast directly (the
  // registry keeps baseline signatures uniform).
  core::RunResult r;
  const baselines::Algo algo = algo_from_name(opt.algo);
  if (opt.loss > 0.0 &&
      (algo == baselines::Algo::kCoded || algo == baselines::Algo::kUncodedPipeline)) {
    radio::FaultModel faults;
    faults.reception_loss_probability = opt.loss;
    faults.seed = opt.seed + 2;
    const core::KBroadcastConfig cfg = algo == baselines::Algo::kCoded
                                           ? baselines::coded_config(know)
                                           : baselines::uncoded_pipeline_config(know);
    r = core::run_kbroadcast(g, cfg, placement, opt.seed + 3, 0, faults);
  } else {
    if (opt.loss > 0.0) usage_error("--loss supports coded/uncoded only");
    r = baselines::run_algo(algo, g, know, placement, opt.seed + 3);
  }

  // Report.
  std::printf("algorithm: %s\n", baselines::algo_name(algo).c_str());
  std::printf("result   : %s (%u/%u nodes complete%s)\n",
              r.delivered_all ? "DELIVERED" : "INCOMPLETE", r.nodes_complete, r.n,
              r.timed_out ? ", timed out" : "");
  std::printf("rounds   : %llu total (%.1f per packet)\n",
              static_cast<unsigned long long>(r.total_rounds),
              r.amortized_rounds_per_packet());
  if (r.stage1_rounds != 0) {
    std::printf("stages   : leader=%llu bfs=%llu collect=%llu (%u phases) "
                "disseminate=%llu\n",
                static_cast<unsigned long long>(r.stage1_rounds),
                static_cast<unsigned long long>(r.stage2_rounds),
                static_cast<unsigned long long>(r.stage3_rounds),
                r.collection_phases,
                static_cast<unsigned long long>(r.stage4_rounds));
  }
  std::printf("channel  : %llu transmissions, %llu deliveries, %llu collision "
              "slots, %llu deaf slots, %llu fault drops\n",
              static_cast<unsigned long long>(r.counters.transmissions),
              static_cast<unsigned long long>(r.counters.deliveries),
              static_cast<unsigned long long>(r.counters.collision_slots),
              static_cast<unsigned long long>(r.counters.deaf_slots),
              static_cast<unsigned long long>(r.counters.fault_drops));
  std::printf("bits     : %llu transmitted, %llu delivered\n",
              static_cast<unsigned long long>(r.counters.bits_transmitted),
              static_cast<unsigned long long>(r.counters.bits_delivered));

  Table kinds({"kind", "transmissions", "deliveries"});
  for (std::size_t kind = 0; kind < radio::kNumMessageKinds; ++kind) {
    if (r.counters.transmissions_by_kind[kind] == 0 &&
        r.counters.deliveries_by_kind[kind] == 0) {
      continue;
    }
    kinds.row()
        .add(radio::message_kind_name(kind))
        .add(r.counters.transmissions_by_kind[kind])
        .add(r.counters.deliveries_by_kind[kind]);
  }
  if (kinds.num_rows() > 0) kinds.print(std::cout);
  return r.delivered_all ? 0 : 1;
}
