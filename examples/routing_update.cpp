// Routing-table update — the paper's "update of routing tables"
// application.
//
// A batch of route updates (destination prefix -> next-hop metric) appears
// at a handful of gateway nodes. One k-broadcast distributes all updates;
// every node then applies them to its local routing table in a
// deterministic order (by packet id), so all tables converge identically.
//
//   $ ./routing_update [updates] [seed]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "common/rng.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"

namespace {

struct RouteUpdate {
  std::uint32_t prefix;
  std::uint32_t next_hop;
  std::uint32_t metric;
};

radiocast::gf2::Payload encode_update(const RouteUpdate& u) {
  radiocast::gf2::Payload p(12);
  std::memcpy(p.data(), &u.prefix, 4);
  std::memcpy(p.data() + 4, &u.next_hop, 4);
  std::memcpy(p.data() + 8, &u.metric, 4);
  return p;
}

RouteUpdate decode_update(const radiocast::gf2::Payload& p) {
  RouteUpdate u{};
  std::memcpy(&u.prefix, p.data(), 4);
  std::memcpy(&u.next_hop, p.data() + 4, 4);
  std::memcpy(&u.metric, p.data() + 8, 4);
  return u;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace radiocast;
  const std::uint32_t updates =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 64;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 9;

  Rng rng(seed);
  const graph::Graph g = graph::make_cluster_chain(6, 8);  // 6 sites of 8 routers
  const std::uint32_t n = g.num_nodes();

  // Updates originate at 3 gateway routers.
  const graph::NodeId gateways[] = {0, n / 2, n - 1};
  core::Placement placement(n);
  std::vector<std::uint32_t> seq(n, 0);
  for (std::uint32_t i = 0; i < updates; ++i) {
    const graph::NodeId gw = gateways[i % 3];
    RouteUpdate u;
    u.prefix = static_cast<std::uint32_t>(rng.next_below(1u << 16));
    u.next_hop = static_cast<std::uint32_t>(rng.next_below(n));
    u.metric = static_cast<std::uint32_t>(1 + rng.next_below(16));
    radio::Packet pkt;
    pkt.id = radio::make_packet_id(gw, seq[gw]++);
    pkt.payload = encode_update(u);
    placement[gw].push_back(std::move(pkt));
  }

  core::KBroadcastConfig cfg;
  cfg.know = radio::Knowledge::exact(g);
  const core::RunResult result = core::run_kbroadcast(g, cfg, placement, seed + 1);
  if (!result.delivered_all) {
    std::printf("broadcast failed to deliver everywhere (rare w.h.p. event)\n");
    return 1;
  }

  // Apply updates in packet-id order — identical at every node.
  std::map<std::uint32_t, std::pair<std::uint32_t, std::uint32_t>> table;
  for (const auto& pkt : core::placement_packets(placement)) {
    const RouteUpdate u = decode_update(pkt.payload);
    table[u.prefix] = {u.next_hop, u.metric};
  }

  std::printf("routers=%u updates=%u gateways=3\n", n, updates);
  std::printf("converged in %llu rounds (%.1f rounds/update)\n",
              static_cast<unsigned long long>(result.total_rounds),
              result.amortized_rounds_per_packet());
  std::printf("routing table entries at every node: %zu\n", table.size());
  std::printf("stage split: leader=%llu bfs=%llu collect=%llu disseminate=%llu\n",
              static_cast<unsigned long long>(result.stage1_rounds),
              static_cast<unsigned long long>(result.stage2_rounds),
              static_cast<unsigned long long>(result.stage3_rounds),
              static_cast<unsigned long long>(result.stage4_rounds));
  return 0;
}
