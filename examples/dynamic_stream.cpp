// Dynamic packet stream — the paper's future-work scenario, served by the
// library's dynamic extension (core/dynamic.hpp).
//
// Packets appear at random nodes over time (telemetry events in a sensor
// field). After a one-time setup (leader election + BFS), the network runs
// repeating collect/disseminate epochs; every event reaches every node
// within a bounded number of epochs of its arrival.
//
//   $ ./dynamic_stream [packets] [seed]
#include <cstdio>
#include <cstdlib>

#include "common/rng.hpp"
#include "core/dynamic.hpp"
#include "graph/generators.hpp"

int main(int argc, char** argv) {
  using namespace radiocast;
  const std::uint32_t k =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 60;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;

  Rng rng(seed);
  const graph::Graph g = graph::make_random_geometric(32, 0.35, rng);

  core::KBroadcastConfig kcfg;
  kcfg.know = radio::Knowledge::exact(g);
  core::DynamicConfig cfg;
  cfg.rc = core::resolve(kcfg);

  // Spread arrivals over ~3 epochs of traffic after setup, then run long
  // enough for the tail to drain.
  const std::uint64_t epoch_estimate =
      core::collection_phase_rounds(cfg.rc.initial_estimate, cfg.rc) +
      cfg.dissemination_window();
  const std::uint64_t spread = cfg.rc.stage3_start() + 3 * epoch_estimate;
  const std::uint64_t horizon = spread + 4 * epoch_estimate;

  Rng arng(seed + 1);
  std::vector<core::Arrival> arrivals =
      core::make_arrivals(g.num_nodes(), k, spread, 16, arng);

  const core::DynamicRunResult r =
      core::run_dynamic_broadcast(g, cfg, arrivals, horizon, seed + 2);

  std::printf("nodes=%u packets=%u horizon=%llu rounds\n", r.n, r.k,
              static_cast<unsigned long long>(r.horizon));
  std::printf("delivered everywhere: %u/%u\n", r.delivered_everywhere, r.k);
  std::printf("latency (arrival -> at every node): mean=%.0f max=%.0f rounds\n",
              r.latency_mean, r.latency_max);
  std::printf("epoch length ~%llu rounds (setup %llu)\n",
              static_cast<unsigned long long>(epoch_estimate),
              static_cast<unsigned long long>(cfg.rc.stage3_start()));
  return r.delivered_everywhere == r.k ? 0 : 1;
}
