// Stage timeline — visualizes a full k-broadcast run as per-message-kind
// ASCII sparklines over time, making the paper's four-stage structure
// visible at a glance:
//
//   alarm  ######      ..   ..   ..            <- stage 1 probes + alarms
//   bfs          ####                           <- stage 2 layers
//   data              ## ## ##                  <- stage 3 unicasts
//   ack                 #  #  #                 <- stage 3 acks
//   plain                        #  #  #        <- stage 4 root injections
//   coded                        ########       <- stage 4 FORWARD
//
//   $ ./stage_timeline [n] [k] [seed]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/rng.hpp"
#include "core/protocol.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "radio/analysis.hpp"
#include "radio/network.hpp"

int main(int argc, char** argv) {
  using namespace radiocast;
  const std::uint32_t n =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 40;
  const std::uint32_t k =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 48;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 11;

  Rng grng(seed);
  const graph::Graph g = graph::make_random_geometric(n, 0.3, grng);
  core::KBroadcastConfig cfg;
  cfg.know = radio::Knowledge::exact(g);
  const core::ResolvedConfig rc = core::resolve(cfg);

  Rng prng(seed + 1);
  const core::Placement placement =
      core::make_placement(n, k, core::PlacementMode::kRandom, 16, prng);

  radio::Network net(g);
  net.trace().enable_events(true);
  Rng master(seed + 2);
  for (radio::NodeId v = 0; v < n; ++v) {
    net.set_protocol(v, std::make_unique<core::KBroadcastNode>(
                            rc, v, placement[v], master.split()));
    if (!placement[v].empty()) net.wake_at_start(v);
  }
  const bool done = net.run_until_done(core::total_rounds_bound(k, rc));
  const std::uint64_t total = net.current_round();
  std::printf("%s, k=%u: %s in %llu rounds\n", g.summary().c_str(), k,
              done ? "delivered" : "INCOMPLETE",
              static_cast<unsigned long long>(total));

  constexpr std::size_t kWidth = 100;
  const std::uint64_t bucket = std::max<std::uint64_t>(1, total / kWidth);
  const radio::ActivityTimeline tl = radio::build_timeline(net.trace(), total, bucket);

  std::printf("bucket = %llu rounds; stage boundaries: |1|=%llu |2|=%llu "
              "(stage 3+4 lengths are run-dependent)\n\n",
              static_cast<unsigned long long>(bucket),
              static_cast<unsigned long long>(rc.stage1_rounds),
              static_cast<unsigned long long>(rc.stage2_rounds));

  for (std::size_t kind = 0; kind < radio::kNumMessageKinds; ++kind) {
    std::vector<std::uint64_t> row(tl.num_buckets());
    std::uint64_t sum = 0;
    for (std::size_t b = 0; b < tl.num_buckets(); ++b) {
      row[b] = tl.deliveries_by_kind[b][kind];
      sum += row[b];
    }
    if (sum == 0) continue;
    std::printf("%-6s |%s|\n", radio::message_kind_name(kind).c_str(),
                radio::sparkline(row).c_str());
  }
  std::printf("%-6s |%s|\n", "coll.", radio::sparkline(tl.collisions).c_str());
  return done ? 0 : 1;
}
