// Stage timeline — runs a full k-broadcast with the flight recorder
// attached and renders the run's structure from the recorded span tree:
//
//   stage1.leader          [      0,    960)    960 rounds
//   stage2.bfs             [    960,   2112)   1152 rounds
//   stage3.collection      [   2112,   5240)   3128 rounds
//     phase p=0 x=512      [   2112,   3660)   1548 rounds  alarmed
//       ospg slots=3072    [   2112,   2630)    518 rounds
//       ...
//   stage4.dissemination   [   5240,   8001)   2761 rounds
//
// and writes the same data as <prefix>.jsonl (grep/jq-able) and
// <prefix>.trace.json (open in chrome://tracing or ui.perfetto.dev).
//
//   $ ./stage_timeline [n] [k] [seed] [out-prefix]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "common/rng.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "obs/export.hpp"
#include "obs/observer.hpp"

int main(int argc, char** argv) {
  using namespace radiocast;
  const std::uint32_t n =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 40;
  const std::uint32_t k =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 48;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 11;
  const std::string prefix = argc > 4 ? argv[4] : "stage_timeline";

  Rng grng(seed);
  const graph::Graph g = graph::make_random_geometric(n, 0.3, grng);
  core::KBroadcastConfig cfg;
  cfg.know = radio::Knowledge::exact(g);

  Rng prng(seed + 1);
  const core::Placement placement =
      core::make_placement(n, k, core::PlacementMode::kRandom, 16, prng);

  obs::RunObserver observer;
  const core::RunResult r = core::run_kbroadcast(g, cfg, placement, seed + 2,
                                                 /*max_rounds=*/0, /*faults=*/{},
                                                 &observer);
  std::printf("%s, k=%u: %s in %llu rounds\n", g.summary().c_str(), k,
              r.delivered_all ? "delivered" : "INCOMPLETE",
              static_cast<unsigned long long>(r.total_rounds));

  // --- Span tree ---
  std::vector<obs::Span> spans = observer.spans();
  std::sort(spans.begin(), spans.end(), [](const obs::Span& a, const obs::Span& b) {
    return a.begin_round != b.begin_round ? a.begin_round < b.begin_round
                                          : a.depth < b.depth;
  });
  for (const obs::Span& s : spans) {
    std::string label(2 * s.depth, ' ');
    label += s.name;
    for (const obs::SpanAttr& a : s.attrs) {
      if (a.key == "stage") continue;
      if (a.key == "alarmed") {
        if (a.value != 0) label += " alarmed";
        continue;
      }
      label += ' ' + a.key.substr(0, 1) + '=' + std::to_string(a.value);
    }
    std::printf("%-34s [%7llu, %7llu) %7llu rounds\n", label.c_str(),
                static_cast<unsigned long long>(s.begin_round),
                static_cast<unsigned long long>(s.end_round),
                static_cast<unsigned long long>(s.duration()));
  }

  // --- Per-stage channel metrics (deliveries by kind) ---
  std::printf("\n%-22s %-8s %12s\n", "stage", "kind", "deliveries");
  for (const obs::MetricSample& m : r.metrics) {
    if (m.name != "sim.deliveries" || m.labels.size() != 2) continue;
    // labels are sorted: [("kind", ...), ("stage", ...)].
    std::printf("%-22s %-8s %12.0f\n", m.labels[1].second.c_str(),
                m.labels[0].second.c_str(), m.value);
  }

  // --- Machine-readable dumps ---
  bool wrote = true;
  {
    std::ofstream out(prefix + ".jsonl");
    if (out) {
      obs::write_run_jsonl(out, observer, r.total_rounds);
    } else {
      wrote = false;
    }
  }
  {
    std::ofstream out(prefix + ".trace.json");
    if (out) {
      obs::write_chrome_trace(out, observer.spans());
    } else {
      wrote = false;
    }
  }
  if (wrote) {
    std::printf("\nwrote %s.jsonl and %s.trace.json (open the latter in "
                "chrome://tracing or ui.perfetto.dev)\n",
                prefix.c_str(), prefix.c_str());
  } else {
    std::fprintf(stderr, "\nerror: cannot write %s.jsonl / %s.trace.json\n",
                 prefix.c_str(), prefix.c_str());
    return 2;
  }
  return r.delivered_all ? 0 : 1;
}
