// Topology learning — the paper's "learning topology of the underlying
// network (in order to benefit from efficiency of centralized solutions)"
// application.
//
// Every node broadcasts its adjacency list (one packet per node; payload =
// its neighbor ids). After the k-broadcast every node can reconstruct the
// full graph locally and, as a demonstration of "centralized solutions on
// top", computes the true diameter and a shortest-path tree — something
// that is expensive to compute distributively but trivial once the
// topology is shared.
//
//   $ ./topology_learning [n] [seed]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "core/runner.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace {

// Payload layout: [deg:u16][neighbor:u32]*  (little endian)
radiocast::gf2::Payload encode_neighbors(std::span<const radiocast::graph::NodeId> nbrs) {
  radiocast::gf2::Payload p;
  p.push_back(static_cast<std::uint8_t>(nbrs.size() & 0xff));
  p.push_back(static_cast<std::uint8_t>((nbrs.size() >> 8) & 0xff));
  for (const auto v : nbrs) {
    for (int b = 0; b < 4; ++b) p.push_back(static_cast<std::uint8_t>((v >> (8 * b)) & 0xff));
  }
  return p;
}

std::vector<radiocast::graph::NodeId> decode_neighbors(const radiocast::gf2::Payload& p) {
  const std::size_t deg = p[0] | (static_cast<std::size_t>(p[1]) << 8);
  std::vector<radiocast::graph::NodeId> nbrs;
  for (std::size_t i = 0; i < deg; ++i) {
    radiocast::graph::NodeId v = 0;
    for (int b = 0; b < 4; ++b) {
      v |= static_cast<radiocast::graph::NodeId>(p[2 + 4 * i + b]) << (8 * b);
    }
    nbrs.push_back(v);
  }
  return nbrs;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace radiocast;
  const std::uint32_t n =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 32;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;

  Rng rng(seed);
  const graph::Graph g = graph::make_gnp_connected(n, 0.12, rng);
  std::printf("true topology: %s\n", g.summary().c_str());

  // One packet per node: its own adjacency list. Payload sizes differ per
  // node; the coded groups handle that transparently (GF(2^b) padding).
  // For simplicity we pad to the maximum adjacency payload so that decoded
  // images are exactly comparable.
  std::size_t max_payload = 0;
  core::Placement placement(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    radio::Packet pkt;
    pkt.id = radio::make_packet_id(v, 0);
    pkt.payload = encode_neighbors(g.neighbors(v));
    max_payload = std::max(max_payload, pkt.payload.size());
    placement[v].push_back(std::move(pkt));
  }
  for (auto& node : placement) {
    for (auto& pkt : node) pkt.payload.resize(max_payload, 0);
  }

  core::KBroadcastConfig cfg;
  cfg.know = radio::Knowledge::exact(g);
  const core::RunResult result = core::run_kbroadcast(g, cfg, placement, seed + 1);
  if (!result.delivered_all) {
    std::printf("broadcast failed to deliver everywhere (rare w.h.p. event)\n");
    return 1;
  }
  std::printf("topology shared in %llu rounds (%.1f per node)\n",
              static_cast<unsigned long long>(result.total_rounds),
              result.amortized_rounds_per_packet());

  // Reconstruct the graph the way every node now can.
  graph::Graph learned(n);
  for (const auto& pkt : core::placement_packets(placement)) {
    const graph::NodeId owner = radio::packet_origin(pkt.id);
    for (const graph::NodeId nbr : decode_neighbors(pkt.payload)) {
      if (owner < nbr) learned.add_edge(owner, nbr);
      else learned.add_edge(nbr, owner);
    }
  }
  learned.finalize();

  const bool same = learned.edges() == g.edges();
  std::printf("reconstructed topology %s the original\n",
              same ? "matches" : "DIFFERS FROM");
  std::printf("centralized computation on the learned graph: diameter=%u\n",
              graph::diameter(learned));
  return same ? 0 : 1;
}
