// Sensor aggregation — the paper's motivating "aggregating functions in
// sensor networks" application.
//
// Every sensor holds one reading (temperature, encoded into its packet
// payload). After one k-broadcast with k = n, every sensor holds every
// reading and can compute any aggregate locally — min / max / mean here —
// with no further communication and an amortized radio cost of only
// O(log Δ) rounds per reading.
//
//   $ ./sensor_aggregation [n] [seed]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/rng.hpp"
#include "core/protocol.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "radio/network.hpp"

namespace {

// A reading is a fixed-point temperature stored in 8 payload bytes.
radiocast::gf2::Payload encode_reading(double celsius) {
  const auto fixed = static_cast<std::int64_t>(celsius * 1000.0);
  radiocast::gf2::Payload p(8);
  std::memcpy(p.data(), &fixed, sizeof(fixed));
  return p;
}

double decode_reading(const radiocast::gf2::Payload& p) {
  std::int64_t fixed = 0;
  std::memcpy(&fixed, p.data(), sizeof(fixed));
  return static_cast<double>(fixed) / 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace radiocast;
  const std::uint32_t n =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 36;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  Rng rng(seed);
  const graph::Graph g = graph::make_random_geometric(n, 0.32, rng);

  // Every sensor sources exactly one packet carrying its reading.
  core::Placement placement(n);
  double truth_min = 1e30, truth_max = -1e30, truth_sum = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    // Quantize to the wire fixed-point so ground truth and decoded
    // aggregates are computed over identical values.
    const double reading =
        decode_reading(encode_reading(15.0 + 20.0 * rng.next_double()));
    truth_min = std::min(truth_min, reading);
    truth_max = std::max(truth_max, reading);
    truth_sum += reading;
    radio::Packet pkt;
    pkt.id = radio::make_packet_id(v, 0);
    pkt.payload = encode_reading(reading);
    placement[v].push_back(std::move(pkt));
  }

  core::KBroadcastConfig cfg;
  cfg.know = radio::Knowledge::exact(g);
  const core::RunResult result = core::run_kbroadcast(g, cfg, placement, seed + 1);
  if (!result.delivered_all) {
    std::printf("broadcast failed to deliver everywhere (rare w.h.p. event)\n");
    return 1;
  }

  // Any node can now aggregate locally; recompute from the ground truth
  // placement the same way a node would from its delivered set.
  const auto all = core::placement_packets(placement);
  double got_min = 1e30, got_max = -1e30, got_sum = 0;
  for (const auto& pkt : all) {
    const double r = decode_reading(pkt.payload);
    got_min = std::min(got_min, r);
    got_max = std::max(got_max, r);
    got_sum += r;
  }

  std::printf("sensors=%u readings=%u rounds=%llu (%.1f rounds/reading)\n", n,
              result.k, static_cast<unsigned long long>(result.total_rounds),
              result.amortized_rounds_per_packet());
  std::printf("aggregate at every node: min=%.3f max=%.3f mean=%.3f\n", got_min,
              got_max, got_sum / n);
  std::printf("ground truth           : min=%.3f max=%.3f mean=%.3f\n", truth_min,
              truth_max, truth_sum / n);
  const bool ok = got_min == truth_min && got_max == truth_max;
  std::printf("aggregates %s\n", ok ? "match" : "MISMATCH");
  return ok ? 0 : 1;
}
