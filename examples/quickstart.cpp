// Quickstart: broadcast 20 packets across a 40-node random geometric
// network and print what happened.
//
//   $ ./quickstart [seed]
//
// This is the smallest complete use of the public API:
//   1. build a topology (graph::make_*),
//   2. place packets (core::make_placement),
//   3. configure the protocol from the nodes' knowledge (Knowledge::exact
//      here; any upper bounds work),
//   4. run and inspect the RunResult.
#include <cstdio>
#include <cstdlib>

#include "common/rng.hpp"
#include "core/runner.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

int main(int argc, char** argv) {
  using namespace radiocast;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // 1. Topology: 40 sensors scattered in a unit square.
  Rng graph_rng(seed);
  const graph::Graph g = graph::make_random_geometric(40, 0.3, graph_rng);
  std::printf("topology: %s, diameter %u\n", g.summary().c_str(),
              graph::diameter(g));

  // 2. Workload: 20 packets on random nodes, 16-byte payloads.
  Rng placement_rng(seed + 1);
  const core::Placement placement =
      core::make_placement(g.num_nodes(), 20, core::PlacementMode::kRandom, 16,
                           placement_rng);

  // 3. Protocol configuration from what the nodes know.
  core::KBroadcastConfig cfg;
  cfg.know = radio::Knowledge::exact(g);

  // 4. Run.
  const core::RunResult result = core::run_kbroadcast(g, cfg, placement, seed + 2);

  std::printf("delivered to all nodes : %s\n", result.delivered_all ? "yes" : "NO");
  std::printf("total rounds           : %llu\n",
              static_cast<unsigned long long>(result.total_rounds));
  std::printf("  stage 1 (leader)     : %llu\n",
              static_cast<unsigned long long>(result.stage1_rounds));
  std::printf("  stage 2 (BFS)        : %llu\n",
              static_cast<unsigned long long>(result.stage2_rounds));
  std::printf("  stage 3 (collect)    : %llu\n",
              static_cast<unsigned long long>(result.stage3_rounds));
  std::printf("  stage 4 (disseminate): %llu\n",
              static_cast<unsigned long long>(result.stage4_rounds));
  std::printf("rounds per packet      : %.1f\n", result.amortized_rounds_per_packet());
  std::printf("transmissions          : %llu (%.1f%% collided slots)\n",
              static_cast<unsigned long long>(result.counters.transmissions),
              100.0 * static_cast<double>(result.counters.collision_slots) /
                  static_cast<double>(result.counters.transmissions + 1));
  return result.delivered_all ? 0 : 1;
}
