// Programmatic use of the experiment-orchestration layer (src/exp/):
// build a scenario in code, run it, render the markdown report, and
// verify the reproducibility manifest — the same machinery behind
// `radiocast run scenarios/<id>.json` (docs/experiments.md).
//
//   $ ./experiment_manifest [n] [k]
//
// Exits non-zero if the run fails delivery or the manifest is not
// reproducible (a second run must produce the identical digest).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "exp/manifest.hpp"
#include "exp/report.hpp"
#include "exp/run.hpp"
#include "exp/scenario.hpp"

int main(int argc, char** argv) {
  using namespace radiocast;
  const int n = argc > 1 ? std::atoi(argv[1]) : 24;
  const int k = argc > 2 ? std::atoi(argv[2]) : 8;

  // A scenario is just JSON — here assembled as a string, but every field
  // has a default, and exp::ScenarioSpec can also be filled in directly.
  const std::string spec_text = R"({
    "id": "example_manifest",
    "title": "coded vs uncoded, programmatically",
    "topology": { "family": "geometric", "n": )" + std::to_string(n) + R"(,
                  "seed": 5, "radius": 0.5 },
    "algos": ["coded", "uncoded"],
    "k": [)" + std::to_string(k) + R"(],
    "seeds": 2,
    "report": { "pivot": "algo", "values": ["r_per_pkt"],
                "ratio": "uncoded/coded:r_per_pkt" }
  })";

  const exp::ScenarioSpec spec = exp::parse_scenario(spec_text);
  const exp::ScenarioOutcome outcome = exp::run_scenario(spec);

  std::printf("%s\n", exp::render_report(outcome.results).c_str());
  const std::string digest = exp::manifest_digest(outcome.manifest);
  std::printf("manifest digest: %s\n", digest.c_str());

  if (!outcome.all_delivered) {
    std::printf("FAIL: not every trial delivered all packets\n");
    return 1;
  }
  // Reproducibility check: the digest covers the spec, build, seed grid
  // and every trial's full RunResult — a re-run must match exactly.
  if (exp::manifest_digest(exp::run_scenario(spec).manifest) != digest) {
    std::printf("FAIL: manifest digest not reproducible\n");
    return 1;
  }
  std::printf("OK: re-run reproduced the manifest digest\n");
  return 0;
}
